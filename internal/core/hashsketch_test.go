package core

import (
	"testing"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func cfg(d, b int, seed uint64) Config { return Config{Tables: d, Buckets: b, Seed: seed} }

func TestConfigValidate(t *testing.T) {
	if err := cfg(0, 8, 1).Validate(); err == nil {
		t.Fatal("expected error for zero tables")
	}
	if err := cfg(3, 0, 1).Validate(); err == nil {
		t.Fatal("expected error for zero buckets")
	}
	if err := cfg(3, 8, 1).Validate(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := NewHashSketch(cfg(-1, 8, 1)); err == nil {
		t.Fatal("NewHashSketch must reject bad config")
	}
}

func TestMustNewHashSketchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewHashSketch(cfg(0, 0, 0))
}

func TestUpdateTouchesOneCounterPerTable(t *testing.T) {
	s := MustNewHashSketch(cfg(7, 32, 5))
	s.Update(99, 1)
	for j := 0; j < 7; j++ {
		nonzero := 0
		for k := 0; k < 32; k++ {
			if c := s.Counter(j, k); c != 0 {
				nonzero++
				if c != 1 && c != -1 {
					t.Fatalf("counter magnitude %d, want ±1", c)
				}
			}
		}
		if nonzero != 1 {
			t.Fatalf("table %d has %d nonzero counters, want exactly 1", j, nonzero)
		}
	}
}

func TestAccountingCounts(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 8, 1))
	s.Update(1, 5)
	s.Update(2, -3)
	if s.NetCount() != 2 {
		t.Fatalf("NetCount = %d, want 2", s.NetCount())
	}
	if s.GrossCount() != 8 {
		t.Fatalf("GrossCount = %d, want 8", s.GrossCount())
	}
	if s.Words() != 24 {
		t.Fatalf("Words = %d, want 24", s.Words())
	}
	if s.Config() != cfg(3, 8, 1) {
		t.Fatal("Config must round-trip")
	}
}

func TestDeleteInvarianceHashSketch(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 16, 9))
	s.Update(10, 1)
	s.Update(77, 4)
	s.Update(10, -1)
	s.Update(77, -4)
	for j := 0; j < 5; j++ {
		for k := 0; k < 16; k++ {
			if s.Counter(j, k) != 0 {
				t.Fatal("deletes must exactly cancel inserts")
			}
		}
	}
	if s.NetCount() != 0 {
		t.Fatalf("NetCount = %d", s.NetCount())
	}
}

func TestCompatibility(t *testing.T) {
	a := MustNewHashSketch(cfg(3, 8, 1))
	b := MustNewHashSketch(cfg(3, 8, 1))
	c := MustNewHashSketch(cfg(3, 8, 2))
	if !a.Compatible(b) {
		t.Fatal("same config must be compatible")
	}
	if a.Compatible(c) {
		t.Fatal("different seed must be incompatible")
	}
}

func TestPointEstimateExactSingleValue(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 16, 3))
	for i := 0; i < 12; i++ {
		s.Update(7, 1)
	}
	if got := s.PointEstimate(7); got != 12 {
		t.Fatalf("PointEstimate = %d, want 12 (only value in stream)", got)
	}
}

func TestPointEstimateNegativeFrequency(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 16, 3))
	s.Update(7, -9)
	if got := s.PointEstimate(7); got != -9 {
		t.Fatalf("PointEstimate = %d, want -9", got)
	}
}

// TestPointEstimateAccuracy checks the Theorem 3 shape: additive error at
// most a few multiples of ‖f‖₂/√b for every domain value.
func TestPointEstimateAccuracy(t *testing.T) {
	const m, n = 1 << 10, 30000
	g, err := workload.NewZipf(m, 1.0, 21)
	if err != nil {
		t.Fatal(err)
	}
	updates := workload.MakeStream(g, n)
	f := stream.NewFreqVector()
	s := MustNewHashSketch(cfg(7, 256, 77))
	stream.Apply(updates, f, s)

	bound := 4 * int64(float64(n)/16) // 4·n/√b with √b = 16
	for v := uint64(0); v < m; v += 7 {
		est := s.PointEstimate(v)
		diff := est - f.Get(v)
		if diff < 0 {
			diff = -diff
		}
		if diff > bound {
			t.Fatalf("value %d: |est %d − f %d| = %d exceeds bound %d", v, est, f.Get(v), diff, bound)
		}
	}
}

func TestSelfJoinEstimateExactSingleValue(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 16, 3))
	for i := 0; i < 9; i++ {
		s.Update(42, 1)
	}
	if got := s.SelfJoinEstimate(); got != 81 {
		t.Fatalf("SelfJoinEstimate = %d, want 81", got)
	}
}

func TestSelfJoinEstimateAccuracy(t *testing.T) {
	const m, n = 1 << 10, 30000
	g, _ := workload.NewZipf(m, 1.1, 31)
	updates := workload.MakeStream(g, n)
	f := stream.NewFreqVector()
	s := MustNewHashSketch(cfg(7, 512, 13))
	stream.Apply(updates, f, s)
	exact := f.SelfJoinSize()
	got := s.SelfJoinEstimate()
	ratio := float64(got) / float64(exact)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("F2 estimate %d vs exact %d (ratio %.3f)", got, exact, ratio)
	}
}

func TestDefaultSkimThreshold(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 100, 1))
	if got := s.DefaultSkimThreshold(); got != 1 {
		t.Fatalf("empty sketch threshold = %d, want 1", got)
	}
	for i := 0; i < 1000; i++ {
		s.Update(uint64(i), 1)
	}
	// n=1000, √b=10 → T = 100.
	if got := s.DefaultSkimThreshold(); got != 100 {
		t.Fatalf("threshold = %d, want 100", got)
	}
	// Net-negative streams use |n|.
	s.Reset()
	s.Update(1, -1000)
	if got := s.DefaultSkimThreshold(); got != 100 {
		t.Fatalf("threshold = %d, want 100 for net -1000", got)
	}
}

func TestCloneCombineReset(t *testing.T) {
	a := MustNewHashSketch(cfg(3, 8, 4))
	b := MustNewHashSketch(cfg(3, 8, 4))
	both := MustNewHashSketch(cfg(3, 8, 4))
	stream.Apply([]stream.Update{{Value: 1, Weight: 2}, {Value: 5, Weight: -1}}, a, both)
	stream.Apply([]stream.Update{{Value: 9, Weight: 3}}, b, both)

	c := a.Clone()
	if err := a.Combine(b); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		for k := 0; k < 8; k++ {
			if a.Counter(j, k) != both.Counter(j, k) {
				t.Fatal("Combine must equal sketching the concatenation")
			}
		}
	}
	if a.NetCount() != both.NetCount() || a.GrossCount() != both.GrossCount() {
		t.Fatal("Combine must merge the counts")
	}
	// Clone must be unaffected by the Combine.
	if c.NetCount() != 1 {
		t.Fatalf("clone net = %d, want 1", c.NetCount())
	}
	other := MustNewHashSketch(cfg(3, 8, 5))
	if err := a.Combine(other); err == nil {
		t.Fatal("expected incompatibility error")
	}
	a.Reset()
	if a.NetCount() != 0 || a.GrossCount() != 0 || a.Counter(0, 0) != 0 {
		t.Fatal("Reset must zero everything")
	}
}

func TestPairedSketchesShareHashes(t *testing.T) {
	a := MustNewHashSketch(cfg(5, 64, 123))
	b := MustNewHashSketch(cfg(5, 64, 123))
	for v := uint64(0); v < 100; v++ {
		for j := 0; j < 5; j++ {
			if a.bucketOf(j, v) != b.bucketOf(j, v) || a.signOf(j, v) != b.signOf(j, v) {
				t.Fatal("same config must derive identical hash families")
			}
		}
	}
}
