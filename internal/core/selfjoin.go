package core

import "skimsketch/internal/stream"

// SelfJoinEstimateOpts tunes EstimateSelfJoin.
type SelfJoinEstimateOpts struct {
	// Threshold overrides the skim threshold; zero means the default.
	Threshold int64
	// NoSkim reduces the estimator to the raw bucket-square estimate.
	NoSkim bool
}

// SelfJoinDecomposition is a decomposed skimmed self-join (F2) estimate:
// Total = DenseDense + 2·DenseSparse + SparseSparse, mirroring
// (f_d + f_s)·(f_d + f_s) with Ĵ_dd exact.
type SelfJoinDecomposition struct {
	Total        int64
	DenseDense   int64
	DenseSparse  int64
	SparseSparse int64
	Threshold    int64
	DenseCount   int
}

// EstimateSelfJoin estimates F2 = Σ f_v² over [0, domain) with the same
// skimming decomposition as the join estimator, applied to a single
// stream: the dense self-product is exact, the dense×sparse cross term is
// estimated against the skimmed sketch, and the sparse×sparse term is the
// residual sketch's self-join estimate. On skewed streams this improves
// on the raw SelfJoinEstimate exactly as skimming improves join
// estimates. The sketch is not mutated.
func (s *HashSketch) EstimateSelfJoin(domain uint64, opts *SelfJoinEstimateOpts) (SelfJoinDecomposition, error) {
	if opts == nil {
		opts = &SelfJoinEstimateOpts{}
	}
	if opts.NoSkim {
		t := s.SelfJoinEstimate()
		return SelfJoinDecomposition{Total: t, SparseSparse: t}, nil
	}
	thr := opts.Threshold
	if thr <= 0 {
		thr = s.DefaultSkimThreshold()
	}
	c := s.Clone()
	dense, err := c.SkimDense(domain, thr)
	if err != nil {
		return SelfJoinDecomposition{}, err
	}
	d := SelfJoinDecomposition{Threshold: thr, DenseCount: len(dense)}
	d.DenseDense = dense.InnerProduct(dense)
	d.DenseSparse = subJoinWorkers(dense, c, 1)
	d.SparseSparse = c.SelfJoinEstimate()
	d.Total = d.DenseDense + 2*d.DenseSparse + d.SparseSparse
	return d, nil
}

// ErrorBound returns the paper's worst-case additive-error shape for a
// skimmed join estimate against a sketch with the same configuration:
// O(n_f · n_g / b) — the Section 4.3 bound with the constants dropped —
// given the two net stream sizes. It is a planning aid (how much space do
// I need for a target error?), not a guarantee certificate.
func (c Config) ErrorBound(nf, ng int64) float64 {
	if nf < 0 {
		nf = -nf
	}
	if ng < 0 {
		ng = -ng
	}
	return float64(nf) * float64(ng) / float64(c.Buckets)
}

// SuggestBuckets returns the bucket count at which the Section 4.3 error
// shape n_f·n_g/b falls below targetError·J for an anticipated join size
// J — the inverse of ErrorBound, rounded up to the next power of two.
func SuggestBuckets(nf, ng, joinSize int64, targetError float64) int {
	if targetError <= 0 || joinSize <= 0 {
		return 1
	}
	need := float64(nf) * float64(ng) / (targetError * float64(joinSize))
	b := 1
	for float64(b) < need && b < 1<<30 {
		b <<= 1
	}
	return b
}

// DenseEnergyFraction reports what fraction of the stream's estimated F2
// is carried by frequencies at or above the threshold — a cheap
// diagnostic for whether skimming will pay off on this stream. It scans
// the domain with point estimates and does not mutate the sketch.
func (s *HashSketch) DenseEnergyFraction(domain uint64, threshold int64) float64 {
	if threshold <= 0 {
		threshold = s.DefaultSkimThreshold()
	}
	total := s.SelfJoinEstimate()
	if total <= 0 {
		return 0
	}
	var dense int64
	for v := uint64(0); v < domain; v++ {
		est := s.PointEstimate(v)
		if est >= threshold || -est >= threshold {
			dense += est * est
		}
	}
	f := float64(dense) / float64(total)
	if f > 1 {
		f = 1
	}
	return f
}

// DenseValues returns the current dense frequency estimates without
// skimming them out (a read-only SKIMDENSE Step 1–7, one-sided like
// SkimDense).
func (s *HashSketch) DenseValues(domain uint64, threshold int64) stream.FreqVector {
	if threshold <= 0 {
		threshold = s.DefaultSkimThreshold()
	}
	dense := stream.NewFreqVector()
	for v := uint64(0); v < domain; v++ {
		if est := s.PointEstimate(v); est >= threshold {
			dense[v] = est
		}
	}
	return dense
}
