// Package tracked provides the third skimming strategy alongside the
// reference domain scan (core.SkimDense) and the dyadic hierarchy
// (dyadic.Skim): an online COUNTSKETCH heavy-hitter tracker rides along
// with the hash sketch, so at query time the skim candidates are already
// known and extraction costs O(k·d) — no domain scan, no extra log m
// factor in update cost or memory. The trade is that the candidate set
// is the tracker's top-k, so k must be sized at or above the expected
// number of dense values (k ≥ √b is a safe default for the Θ(n/√b)
// threshold, since at most √b values can exceed it... more precisely at
// most n/T = √b values can have frequency ≥ T = n/√b).
package tracked

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/stream"
	"skimsketch/internal/topk"
)

// Sketch couples a hash sketch with an online top-k tracker.
type Sketch struct {
	tracker *topk.Tracker
	cfg     core.Config
	k       int
}

// New returns a tracked sketch whose tracker retains k candidates. Two
// tracked sketches with equal (k, cfg) form a join pair.
func New(k int, cfg core.Config) (*Sketch, error) {
	tr, err := topk.New(k, cfg)
	if err != nil {
		return nil, err
	}
	return &Sketch{tracker: tr, cfg: cfg, k: k}, nil
}

// MustNew is New for static configurations.
func MustNew(k int, cfg core.Config) *Sketch {
	s, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Update folds one stream element (sketch + tracker). It implements
// stream.Sink; per-element cost is O(d + log k).
func (s *Sketch) Update(value uint64, weight int64) {
	s.tracker.Update(value, weight)
}

// Base exposes the underlying hash sketch.
func (s *Sketch) Base() *core.HashSketch { return s.tracker.Sketch() }

// Candidates returns the current tracked heavy-hitter values.
func (s *Sketch) Candidates() []uint64 {
	top := s.tracker.Top()
	out := make([]uint64, len(top))
	for i, e := range top {
		out[i] = e.Value
	}
	return out
}

// Words returns the synopsis size in counter words (the tracker's heap
// is 2k words of bookkeeping, charged here as k entries ≈ 2 words each).
func (s *Sketch) Words() int { return s.Base().Words() + 2*s.k }

// Compatible reports whether two tracked sketches form a join pair.
func (s *Sketch) Compatible(o *Sketch) bool { return s.k == o.k && s.cfg == o.cfg }

// Skim extracts the dense frequencies among the tracked candidates from
// a clone of the base sketch, returning the skimmed clone and the dense
// vector. A threshold ≤ 0 selects the sketch default.
func (s *Sketch) Skim(threshold int64) (*core.HashSketch, stream.FreqVector, error) {
	base := s.Base()
	if threshold <= 0 {
		threshold = base.DefaultSkimThreshold()
	}
	clone := base.Clone()
	dense, err := clone.SkimValues(s.Candidates(), threshold)
	if err != nil {
		return nil, nil, err
	}
	return clone, dense, nil
}

// EstimateJoin runs the skimmed-sketch join estimator using the tracked
// candidates as skim sets. Thresholds ≤ 0 select per-stream defaults.
// Neither sketch is mutated.
func EstimateJoin(f, g *Sketch, thresholdF, thresholdG int64) (core.Estimate, error) {
	if !f.Compatible(g) {
		return core.Estimate{}, fmt.Errorf("tracked: sketches are not a pair")
	}
	fs, fd, err := f.Skim(thresholdF)
	if err != nil {
		return core.Estimate{}, err
	}
	gs, gd, err := g.Skim(thresholdG)
	if err != nil {
		return core.Estimate{}, err
	}
	return core.EstimateJoinSkimmed(fs, gs, fd, gd)
}
