package tracked

import (
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func cfg(d, b int, seed uint64) core.Config { return core.Config{Tables: d, Buckets: b, Seed: seed} }

func TestNewValidation(t *testing.T) {
	if _, err := New(0, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := New(3, cfg(0, 8, 1)); err == nil {
		t.Fatal("expected config error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, cfg(1, 1, 1))
}

func TestCompatible(t *testing.T) {
	a := MustNew(4, cfg(3, 8, 1))
	if !a.Compatible(MustNew(4, cfg(3, 8, 1))) {
		t.Fatal("equal shapes must pair")
	}
	if a.Compatible(MustNew(5, cfg(3, 8, 1))) || a.Compatible(MustNew(4, cfg(3, 8, 2))) {
		t.Fatal("different shapes must not pair")
	}
}

func TestWords(t *testing.T) {
	s := MustNew(10, cfg(3, 8, 1))
	if s.Words() != 3*8+20 {
		t.Fatalf("Words = %d", s.Words())
	}
}

// TestSkimMatchesDomainScanWhenKCoversDense: with k at least the number
// of dense values, the tracked skim must extract the same dense vector
// as the reference domain scan.
func TestSkimMatchesDomainScanWhenKCoversDense(t *testing.T) {
	const domain = 1 << 12
	c := cfg(7, 256, 41)
	tr := MustNew(32, c)
	plain := core.MustNewHashSketch(c)
	zf, _ := workload.NewZipf(domain, 1.3, 7)
	for _, u := range workload.MakeStream(zf, 40000) {
		tr.Update(u.Value, u.Weight)
		plain.Update(u.Value, u.Weight)
	}
	thr := plain.DefaultSkimThreshold()
	skimmed, denseTracked, err := tr.Skim(thr)
	if err != nil {
		t.Fatal(err)
	}
	denseNaive, err := plain.SkimDense(domain, thr)
	if err != nil {
		t.Fatal(err)
	}
	if len(denseTracked) != len(denseNaive) {
		t.Fatalf("dense sets differ: tracked %d vs naive %d", len(denseTracked), len(denseNaive))
	}
	for v, w := range denseNaive {
		if denseTracked[v] != w {
			t.Fatalf("dense sets differ at %d: %d vs %d", v, denseTracked[v], w)
		}
	}
	for j := 0; j < 7; j++ {
		for k := 0; k < 256; k++ {
			if skimmed.Counter(j, k) != plain.Counter(j, k) {
				t.Fatal("skimmed sketches diverge")
			}
		}
	}
}

func TestSkimDoesNotMutate(t *testing.T) {
	tr := MustNew(4, cfg(5, 64, 3))
	tr.Update(7, 1000)
	before := tr.Base().Clone()
	if _, _, err := tr.Skim(0); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		for k := 0; k < 64; k++ {
			if tr.Base().Counter(j, k) != before.Counter(j, k) {
				t.Fatal("Skim must not mutate the live sketch")
			}
		}
	}
}

func TestEstimateJoinAccuracy(t *testing.T) {
	const domain = 1 << 12
	const n = 40000
	c := cfg(7, 256, 99)
	f := MustNew(32, c)
	g := MustNew(32, c)
	zf, _ := workload.NewZipf(domain, 1.3, 11)
	zg, _ := workload.NewZipf(domain, 1.3, 12)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	for _, u := range workload.MakeStream(zf, n) {
		f.Update(u.Value, u.Weight)
		fv.Update(u.Value, u.Weight)
	}
	for _, u := range workload.MakeStream(workload.NewShifted(zg, 10), n) {
		g.Update(u.Value, u.Weight)
		gv.Update(u.Value, u.Weight)
	}
	exact := float64(fv.InnerProduct(gv))
	est, err := EstimateJoin(f, g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.SymmetricError(float64(est.Total), exact); e > 0.25 {
		t.Fatalf("tracked join error %.4f (est %d vs exact %.0f)", e, est.Total, exact)
	}
}

func TestEstimateJoinIncompatible(t *testing.T) {
	if _, err := EstimateJoin(MustNew(4, cfg(3, 8, 1)), MustNew(4, cfg(3, 8, 2)), 0, 0); err == nil {
		t.Fatal("expected pairing error")
	}
}

func TestCandidatesTrackHeavyValues(t *testing.T) {
	tr := MustNew(2, cfg(5, 64, 3))
	tr.Update(9, 500)
	tr.Update(100, 300)
	u := workload.NewUniform(1024, 1)
	for i := 0; i < 1000; i++ {
		tr.Update(u.Next(), 1)
	}
	cands := tr.Candidates()
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	seen := map[uint64]bool{cands[0]: true, cands[1]: true}
	if !seen[9] || !seen[100] {
		t.Fatalf("heavy values missing from %v", cands)
	}
}
