package dyadic_test

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/dyadic"
)

// Dense-frequency extraction without a domain scan: the dyadic descent
// visits only intervals that can contain dense values.
func ExampleHierarchy_Skim() {
	h := dyadic.MustNew(16, core.Config{Tables: 5, Buckets: 256, Seed: 7}) // domain 2^16
	h.Update(12345, 5000)                                                  // one dense value
	for v := uint64(0); v < 2000; v++ {
		h.Update(v, 1) // light mass
	}
	dense, err := h.Skim(1000)
	if err != nil {
		panic(err)
	}
	est := dense[12345]
	fmt.Println("extracted:", len(dense), "value; within 1%:", est > 4950 && est < 5050)
	// Output: extracted: 1 value; within 1%: true
}
