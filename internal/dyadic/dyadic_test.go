package dyadic

import (
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func cfg(d, b int, seed uint64) core.Config { return core.Config{Tables: d, Buckets: b, Seed: seed} }

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected error for negative bits")
	}
	if _, err := New(63, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected error for bits > 62")
	}
	if _, err := New(4, cfg(0, 8, 1)); err == nil {
		t.Fatal("expected error for bad sketch config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(-1, cfg(1, 1, 1))
}

func TestStructure(t *testing.T) {
	h := MustNew(10, cfg(5, 64, 7))
	if h.Bits() != 10 || h.Domain() != 1024 || h.Levels() != 11 {
		t.Fatalf("Bits=%d Domain=%d Levels=%d", h.Bits(), h.Domain(), h.Levels())
	}
	if h.Words() != 11*5*64 {
		t.Fatalf("Words = %d", h.Words())
	}
	if h.Base() != h.Level(0) {
		t.Fatal("Base must be level 0")
	}
}

func TestCompatibility(t *testing.T) {
	a := MustNew(8, cfg(5, 64, 7))
	b := MustNew(8, cfg(5, 64, 7))
	c := MustNew(8, cfg(5, 64, 8))
	d := MustNew(9, cfg(5, 64, 7))
	if !a.Compatible(b) || a.Compatible(c) || a.Compatible(d) {
		t.Fatal("compatibility must require equal bits and config")
	}
}

// TestLevelAggregation: the level-ℓ sketch must summarize interval
// frequencies, so a single value's point estimate at every level equals
// its frequency.
func TestLevelAggregation(t *testing.T) {
	h := MustNew(8, cfg(5, 32, 3))
	h.Update(200, 17)
	for l := 0; l <= 8; l++ {
		if got := h.Level(l).PointEstimate(200 >> uint(l)); got != 17 {
			t.Fatalf("level %d estimate = %d, want 17", l, got)
		}
	}
}

// TestSiblingsAggregate: two children of one interval sum at the parent.
func TestSiblingsAggregate(t *testing.T) {
	h := MustNew(4, cfg(5, 32, 9))
	h.Update(6, 10) // interval 3 at level 1
	h.Update(7, 5)  // same parent interval
	if got := h.Level(1).PointEstimate(3); got != 15 {
		t.Fatalf("parent estimate = %d, want 15", got)
	}
}

// TestSkimMatchesNaive: the dyadic descent must extract exactly the same
// dense vector as the reference full-domain scan, because the base
// sketches share state and the candidates cover all dense values.
func TestSkimMatchesNaive(t *testing.T) {
	const bits = 12
	const domain = 1 << bits
	h := MustNew(bits, cfg(7, 256, 41))
	zf, _ := workload.NewZipf(domain, 1.2, 7)
	for _, u := range workload.MakeStream(zf, 30000) {
		h.Update(u.Value, u.Weight)
	}
	threshold := h.DefaultSkimThreshold()
	naiveSketch := h.Base().Clone()

	denseDyadic, err := h.Skim(threshold)
	if err != nil {
		t.Fatal(err)
	}
	denseNaive, err := naiveSketch.SkimDense(domain, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(denseDyadic) != len(denseNaive) {
		t.Fatalf("dense sets differ in size: dyadic %d vs naive %d", len(denseDyadic), len(denseNaive))
	}
	for v, w := range denseNaive {
		if denseDyadic[v] != w {
			t.Fatalf("dense sets differ at %d: %d vs %d", v, denseDyadic[v], w)
		}
	}
	// And the skimmed base sketches must agree counter by counter.
	for j := 0; j < 7; j++ {
		for k := 0; k < 256; k++ {
			if h.Base().Counter(j, k) != naiveSketch.Counter(j, k) {
				t.Fatal("skimmed base sketches diverge")
			}
		}
	}
}

// TestSkimKeepsLevelsConsistent: after skimming, every level must
// reflect the residual stream: the estimate of the dense value's interval
// drops by (roughly) the extracted amount. (Higher levels legitimately
// retain the light mass that shares the interval.)
func TestSkimKeepsLevelsConsistent(t *testing.T) {
	h := MustNew(10, cfg(5, 128, 5))
	h.Update(777, 5000)
	g := workload.NewUniform(1024, 3)
	for i := 0; i < 2000; i++ {
		h.Update(g.Next(), 1)
	}
	before := make([]int64, 11)
	for l := 0; l <= 10; l++ {
		before[l] = h.Level(l).PointEstimate(777 >> uint(l))
	}
	dense, err := h.Skim(1000)
	if err != nil {
		t.Fatal(err)
	}
	extracted, ok := dense[777]
	if !ok {
		t.Fatal("777 must be extracted")
	}
	for l := 0; l <= 10; l++ {
		after := h.Level(l).PointEstimate(777 >> uint(l))
		drop := before[l] - after
		if diff := drop - extracted; diff > 600 || diff < -600 {
			t.Fatalf("level %d estimate dropped by %d, want ≈ extracted %d", l, drop, extracted)
		}
	}
}

func TestCandidateValuesPrunesLightDomain(t *testing.T) {
	h := MustNew(12, cfg(5, 128, 11))
	h.Update(99, 10000)
	g := workload.NewUniform(4096, 1)
	for i := 0; i < 2000; i++ {
		h.Update(g.Next(), 1)
	}
	cands := h.CandidateValues(2000)
	if len(cands) == 0 || len(cands) > 64 {
		t.Fatalf("candidate set size %d; expected a small pruned set", len(cands))
	}
	found := false
	for _, v := range cands {
		if v == 99 {
			found = true
		}
	}
	if !found {
		t.Fatal("dense value 99 must survive the descent")
	}
}

func TestSkimDefaultThreshold(t *testing.T) {
	h := MustNew(6, cfg(3, 16, 1))
	h.Update(1, 100)
	if _, err := h.Skim(0); err != nil {
		t.Fatalf("Skim with default threshold failed: %v", err)
	}
}

// TestEstimateJoinDyadic: end-to-end join estimation through the
// hierarchy path must be accurate on skewed data.
func TestEstimateJoinDyadic(t *testing.T) {
	const bits = 12
	const domain = 1 << bits
	const n = 40000
	c := cfg(5, 256, 2024)
	fh := MustNew(bits, c)
	gh := MustNew(bits, c)
	zf, _ := workload.NewZipf(domain, 1.3, 71)
	zg, _ := workload.NewZipf(domain, 1.3, 72)
	fs := workload.MakeStream(zf, n)
	gs := workload.MakeStream(workload.NewShifted(zg, 10), n)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	for _, u := range fs {
		fh.Update(u.Value, u.Weight)
		fv.Update(u.Value, u.Weight)
	}
	for _, u := range gs {
		gh.Update(u.Value, u.Weight)
		gv.Update(u.Value, u.Weight)
	}
	exact := float64(fv.InnerProduct(gv))
	est, err := EstimateJoin(fh, gh, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.SymmetricError(float64(est.Total), exact); e > 0.25 {
		t.Fatalf("dyadic join error %.4f too large (est %d vs exact %.0f)", e, est.Total, exact)
	}
}

func TestEstimateJoinIncompatible(t *testing.T) {
	a := MustNew(4, cfg(3, 16, 1))
	b := MustNew(4, cfg(3, 16, 2))
	if _, err := EstimateJoin(a, b, 0, 0); err == nil {
		t.Fatal("expected pairing error")
	}
}

// TestDyadicDeleteInvariance: insert/delete noise must not change the
// hierarchy state.
func TestDyadicDeleteInvariance(t *testing.T) {
	c := cfg(3, 32, 5)
	a := MustNew(6, c)
	b := MustNew(6, c)
	base := []stream.Update{{Value: 3, Weight: 2}, {Value: 60, Weight: 4}}
	noisy := workload.WithDeletes(base, 0.9, 3)
	for _, u := range base {
		a.Update(u.Value, u.Weight)
	}
	for _, u := range noisy {
		b.Update(u.Value, u.Weight)
	}
	for l := 0; l <= 6; l++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 32; k++ {
				if a.Level(l).Counter(j, k) != b.Level(l).Counter(j, k) {
					t.Fatal("delete noise changed hierarchy counters")
				}
			}
		}
	}
}
