package dyadic

import (
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/workload"
)

// buildPair returns two identically-fed hierarchies (same bits, config,
// stream), so one can be skimmed sequentially and the other in parallel
// and the results compared counter by counter.
func buildPair(t *testing.T, bits int, c core.Config, n int) (*Hierarchy, *Hierarchy) {
	t.Helper()
	a, err := New(bits, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(bits, c)
	if err != nil {
		t.Fatal(err)
	}
	z, err := workload.NewZipf(1<<uint(bits), 1.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range workload.MakeStream(z, n) {
		a.Update(u.Value, u.Weight)
		b.Update(u.Value, u.Weight)
	}
	return a, b
}

func hierarchiesEqual(t *testing.T, a, b *Hierarchy, c core.Config) {
	t.Helper()
	for l := 0; l < a.Levels(); l++ {
		for j := 0; j < c.Tables; j++ {
			for k := 0; k < c.Buckets; k++ {
				if a.Level(l).Counter(j, k) != b.Level(l).Counter(j, k) {
					t.Fatalf("level %d counter (%d,%d) differs: %d vs %d",
						l, j, k, a.Level(l).Counter(j, k), b.Level(l).Counter(j, k))
				}
			}
		}
	}
}

// The parallel dyadic skim must extract the identical dense vector and
// leave every level's residual counters identical to the sequential
// skim's, for several worker counts including the per-CPU auto mode.
func TestSkimParallelMatchesSequential(t *testing.T) {
	c := cfg(5, 64, 11)
	for _, workers := range []int{2, 4, 9, -1} {
		seq, par := buildPair(t, 12, c, 30000)
		seqDense, err := seq.Skim(0)
		if err != nil {
			t.Fatal(err)
		}
		parDense, err := par.SkimParallel(0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(seqDense) != len(parDense) {
			t.Fatalf("workers=%d: dense sizes differ: %d vs %d", workers, len(seqDense), len(parDense))
		}
		for v, w := range seqDense {
			if parDense[v] != w {
				t.Fatalf("workers=%d: dense[%d] = %d, want %d", workers, v, parDense[v], w)
			}
		}
		hierarchiesEqual(t, seq, par, c)
	}
}

// The parallel candidate descent must return the same candidates in the
// same order as the sequential descent.
func TestCandidateValuesParallelOrder(t *testing.T) {
	c := cfg(5, 64, 3)
	seq, _ := buildPair(t, 10, c, 20000)
	thr := seq.DefaultSkimThreshold()
	want := seq.CandidateValues(thr)
	for _, workers := range []int{2, 3, 8} {
		got := seq.candidateValues(thr, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d candidates, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: candidate[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// EstimateJoinParallel must reproduce EstimateJoin's full decomposed
// estimate exactly.
func TestEstimateJoinParallelMatches(t *testing.T) {
	c := cfg(5, 64, 29)
	f1, f2 := buildPair(t, 12, c, 25000)
	g1, g2 := buildPair(t, 12, c, 25000)
	seq, err := EstimateJoin(f1, g1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := EstimateJoinParallel(f2, g2, 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("estimates differ: %+v vs %+v", seq, par)
	}
	if _, err := EstimateJoinParallel(f2, MustNew(12, cfg(5, 64, 99)), 0, 0, 4); err == nil {
		t.Fatal("expected pairing error")
	}
}
