// Package dyadic implements the optimized SKIMDENSE of Section 4.2: a
// hierarchy of hash sketches over dyadic intervals that lets dense
// frequencies be extracted in O(b·d·log m) time instead of the O(m·d)
// full-domain scan of the reference implementation.
//
// The domain [0, 2^bits) is organized into bits+1 levels. At level ℓ each
// value v contributes to the dyadic interval v >> ℓ, so level 0 is the
// plain value sketch and level `bits` has a single interval covering the
// whole domain. Since interval frequencies are sums of their children's
// frequencies, an interval whose (estimated) frequency is below the skim
// threshold cannot contain a dense value — the descent prunes it. Only
// intervals that may contain dense values are expanded, and at most O(n/T)
// intervals per level can reach frequency T, giving the stated bound.
//
// Like the paper, the pruning argument assumes non-negative interval
// frequencies (insert-dominated streams); with heavily net-negative
// frequencies, cancellation inside an interval could mask a dense child.
package dyadic

import (
	"fmt"
	"runtime"
	"sync"

	"skimsketch/internal/core"
	"skimsketch/internal/hashfam"
	"skimsketch/internal/stream"
)

// Hierarchy is the stack of per-level hash sketches.
type Hierarchy struct {
	bits   int
	cfg    core.Config
	levels []*core.HashSketch // levels[ℓ] sketches v >> ℓ
}

// New returns a hierarchy over the domain [0, 2^bits). cfg.Seed seeds the
// whole hierarchy; per-level sketch seeds are derived from it, so two
// hierarchies built with equal (bits, cfg) are compatible level by level
// and their base sketches form a valid join pair.
func New(bits int, cfg core.Config) (*Hierarchy, error) {
	if bits < 0 || bits > 62 {
		return nil, fmt.Errorf("dyadic: bits must be in [0, 62], got %d", bits)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ss := hashfam.NewSeedStream(cfg.Seed)
	levels := make([]*core.HashSketch, bits+1)
	for l := range levels {
		lcfg := cfg
		lcfg.Seed = ss.Next()
		sk, err := core.NewHashSketch(lcfg)
		if err != nil {
			return nil, err
		}
		levels[l] = sk
	}
	return &Hierarchy{bits: bits, cfg: cfg, levels: levels}, nil
}

// MustNew is New for static configurations.
func MustNew(bits int, cfg core.Config) *Hierarchy {
	h, err := New(bits, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Update folds one stream element into every level. It implements
// stream.Sink; the per-element cost is O(d·log m), the paper's
// logarithmic bound.
func (h *Hierarchy) Update(value uint64, weight int64) {
	for l, sk := range h.levels {
		sk.Update(value>>uint(l), weight)
	}
}

// Bits returns log₂ of the domain size.
func (h *Hierarchy) Bits() int { return h.bits }

// Domain returns the domain size 2^bits.
func (h *Hierarchy) Domain() uint64 { return 1 << uint(h.bits) }

// Levels returns the number of levels (bits+1).
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Level returns the sketch at level l.
func (h *Hierarchy) Level(l int) *core.HashSketch { return h.levels[l] }

// Base returns the level-0 (plain value) sketch; after Skim it is the
// skimmed sketch to hand to core.EstimateJoinSkimmed.
func (h *Hierarchy) Base() *core.HashSketch { return h.levels[0] }

// Words returns the total synopsis size in counter words across levels.
func (h *Hierarchy) Words() int {
	w := 0
	for _, sk := range h.levels {
		w += sk.Words()
	}
	return w
}

// Compatible reports whether two hierarchies share structure and seeds.
func (h *Hierarchy) Compatible(o *Hierarchy) bool {
	return h.bits == o.bits && h.cfg == o.cfg
}

// DefaultSkimThreshold mirrors core.HashSketch.DefaultSkimThreshold on
// the base sketch.
func (h *Hierarchy) DefaultSkimThreshold() int64 {
	return h.levels[0].DefaultSkimThreshold()
}

// CandidateValues descends the hierarchy and returns every level-0 value
// whose ancestors all have estimated frequency ≥ threshold. This is the
// search phase of the optimized SKIMDENSE; it does not modify any sketch.
func (h *Hierarchy) CandidateValues(threshold int64) []uint64 {
	return h.candidateValues(threshold, 1)
}

// candidateValues is the dyadic descent with each level's frontier split
// into contiguous segments estimated by up to `workers` goroutines. Point
// estimates are read-only and segment results are concatenated in
// frontier order, so the returned candidate list is identical to the
// sequential descent's for every worker count.
func (h *Hierarchy) candidateValues(threshold int64, workers int) []uint64 {
	frontier := []uint64{0}
	for l := h.bits; l >= 1; l-- {
		sk := h.levels[l]
		frontier = expandFrontier(sk, frontier, threshold, workers)
		if len(frontier) == 0 {
			break
		}
	}
	return frontier
}

// expandFrontier applies the one-sided extraction test (matching
// SkimValues: interval frequencies are non-negative in the model this
// descent assumes) to every frontier interval and returns the surviving
// intervals' children, preserving frontier order.
func expandFrontier(sk *core.HashSketch, frontier []uint64, threshold int64, workers int) []uint64 {
	if workers <= 1 || len(frontier) < 2*workers {
		next := frontier[:0:0]
		for _, u := range frontier {
			if sk.PointEstimate(u) >= threshold {
				next = append(next, u<<1, u<<1|1)
			}
		}
		return next
	}
	parts := make([][]uint64, workers)
	var wg sync.WaitGroup
	chunk, rem := len(frontier)/workers, len(frontier)%workers
	lo := 0
	for i := 0; i < workers; i++ {
		size := chunk
		if i < rem {
			size++
		}
		hi := lo + size
		wg.Add(1)
		go func(i int, seg []uint64) {
			defer wg.Done()
			var out []uint64
			for _, u := range seg {
				if sk.PointEstimate(u) >= threshold {
					out = append(out, u<<1, u<<1|1)
				}
			}
			parts[i] = out
		}(i, frontier[lo:hi])
		lo = hi
	}
	wg.Wait()
	var next []uint64
	for _, p := range parts {
		next = append(next, p...)
	}
	return next
}

// Skim implements the optimized SKIMDENSE: it finds candidate values via
// the dyadic descent, extracts the dense ones from the base sketch, and
// subtracts the extracted estimates from every level so the hierarchy
// remains a consistent summary of the residual stream. A threshold ≤ 0
// selects DefaultSkimThreshold. It returns the extracted dense vector.
func (h *Hierarchy) Skim(threshold int64) (stream.FreqVector, error) {
	return h.SkimParallel(threshold, 1)
}

// SkimParallel is Skim with each level's candidate descent partitioned
// across up to `workers` goroutines (≤ 1 is sequential, < 0 one per CPU),
// mirroring core.SkimDenseParallel's exactness guarantee: the extracted
// dense vector and every level's residual counters are identical to the
// sequential skim's.
func (h *Hierarchy) SkimParallel(threshold int64, workers int) (stream.FreqVector, error) {
	if threshold <= 0 {
		threshold = h.DefaultSkimThreshold()
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	candidates := h.candidateValues(threshold, workers)
	dense, err := h.levels[0].SkimValues(candidates, threshold)
	if err != nil {
		return nil, err
	}
	// Keep levels ≥ 1 consistent: subtract each dense estimate from the
	// interval it belongs to at every level. Levels are independent, so
	// they can be rolled up and subtracted concurrently.
	subtractLevel := func(l int) {
		parent := stream.NewFreqVector()
		for v, w := range dense {
			parent.Update(v>>uint(l), w)
		}
		h.levels[l].Subtract(parent)
	}
	if workers <= 1 || h.bits < 2 {
		for l := 1; l <= h.bits; l++ {
			subtractLevel(l)
		}
		return dense, nil
	}
	w := workers
	if w > h.bits {
		w = h.bits
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for l := start; l <= h.bits; l += w {
				subtractLevel(l)
			}
		}(i + 1)
	}
	wg.Wait()
	return dense, nil
}

// EstimateJoin runs the full skimmed-sketch join estimation over two
// hierarchies: dyadic skim on each, then the four-way subjoin combination
// on the base sketches. Thresholds ≤ 0 select the per-stream defaults.
// The hierarchies ARE mutated (skimmed); clone upstream if the synopsis
// must survive, or rebuild via Unskim on the base sketches.
func EstimateJoin(f, g *Hierarchy, thresholdF, thresholdG int64) (core.Estimate, error) {
	return EstimateJoinParallel(f, g, thresholdF, thresholdG, 1)
}

// EstimateJoinParallel is EstimateJoin with both skims run through
// SkimParallel. The estimate is bit-identical to EstimateJoin's for any
// worker count.
func EstimateJoinParallel(f, g *Hierarchy, thresholdF, thresholdG int64, workers int) (core.Estimate, error) {
	if !f.Compatible(g) {
		return core.Estimate{}, fmt.Errorf("dyadic: hierarchies are not a pair")
	}
	fd, err := f.SkimParallel(thresholdF, workers)
	if err != nil {
		return core.Estimate{}, err
	}
	gd, err := g.SkimParallel(thresholdG, workers)
	if err != nil {
		return core.Estimate{}, err
	}
	return core.EstimateJoinSkimmed(f.Base(), g.Base(), fd, gd)
}
