package dyadic

import (
	"encoding/binary"
	"fmt"

	"skimsketch/internal/core"
)

// Binary serialization: "SKDY" magic, u32 version, u32 bits, u32 tables,
// u32 buckets, u64 seed, then bits+1 length-prefixed level-sketch blobs
// (each produced by core.HashSketch.MarshalBinary).

var hierarchyMagic = [4]byte{'S', 'K', 'D', 'Y'}

const hierarchyVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *Hierarchy) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 28)
	buf = append(buf, hierarchyMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, hierarchyVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.cfg.Tables))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.cfg.Buckets))
	buf = binary.LittleEndian.AppendUint64(buf, h.cfg.Seed)
	for _, sk := range h.levels {
		blob, err := sk.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state entirely.
func (h *Hierarchy) UnmarshalBinary(data []byte) error {
	if len(data) < 28 {
		return fmt.Errorf("dyadic: hierarchy data truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != hierarchyMagic {
		return fmt.Errorf("dyadic: bad hierarchy magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != hierarchyVersion {
		return fmt.Errorf("dyadic: unsupported hierarchy version %d", v)
	}
	bits := int(binary.LittleEndian.Uint32(data[8:12]))
	cfg := core.Config{
		Tables:  int(binary.LittleEndian.Uint32(data[12:16])),
		Buckets: int(binary.LittleEndian.Uint32(data[16:20])),
		Seed:    binary.LittleEndian.Uint64(data[20:28]),
	}
	// Validate the total length against the declared shape BEFORE
	// allocating bits+1 level sketches: each level blob is a 4-byte
	// length prefix plus a 40-byte sketch header plus 8·tables·buckets
	// counter bytes. Hostile headers could otherwise demand gigabytes.
	if bits < 0 || bits > 62 {
		return fmt.Errorf("dyadic: bits %d out of range", bits)
	}
	perLevel := 44 + 8*uint64(uint32(cfg.Tables))*uint64(uint32(cfg.Buckets))
	if want := 28 + uint64(bits+1)*perLevel; uint64(len(data)) != want {
		return fmt.Errorf("dyadic: hierarchy data is %d bytes, want %d for bits=%d %dx%d",
			len(data), want, bits, cfg.Tables, cfg.Buckets)
	}
	fresh, err := New(bits, cfg)
	if err != nil {
		return fmt.Errorf("dyadic: unmarshal: %w", err)
	}
	off := 28
	for l := range fresh.levels {
		if off+4 > len(data) {
			return fmt.Errorf("dyadic: truncated before level %d", l)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+n > len(data) {
			return fmt.Errorf("dyadic: level %d blob truncated", l)
		}
		if err := fresh.levels[l].UnmarshalBinary(data[off : off+n]); err != nil {
			return fmt.Errorf("dyadic: level %d: %w", l, err)
		}
		off += n
	}
	if off != len(data) {
		return fmt.Errorf("dyadic: %d trailing bytes", len(data)-off)
	}
	*h = *fresh
	return nil
}
