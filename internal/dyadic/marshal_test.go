package dyadic

import (
	"testing"

	"skimsketch/internal/workload"
)

func TestHierarchyMarshalRoundTrip(t *testing.T) {
	h := MustNew(8, cfg(5, 32, 99))
	z, _ := workload.NewZipf(256, 1.3, 3)
	for _, u := range workload.MakeStream(z, 5000) {
		h.Update(u.Value, u.Weight)
	}
	blob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Hierarchy
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !r.Compatible(h) {
		t.Fatal("restored hierarchy must be compatible")
	}
	for l := 0; l <= 8; l++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 32; k++ {
				if r.Level(l).Counter(j, k) != h.Level(l).Counter(j, k) {
					t.Fatalf("level %d counters differ", l)
				}
			}
		}
	}
	// Restored hierarchy must skim identically.
	d1, err := h.Skim(0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.Skim(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("skims differ: %d vs %d", len(d1), len(d2))
	}
	for v, w := range d1 {
		if d2[v] != w {
			t.Fatalf("skims differ at %d", v)
		}
	}
}

// TestHierarchyUnmarshalHostileDimensions: huge declared dimensions with
// a short body must be rejected before any level allocation.
func TestHierarchyUnmarshalHostileDimensions(t *testing.T) {
	h := MustNew(3, cfg(2, 4, 1))
	blob, _ := h.MarshalBinary()
	var r Hierarchy
	hostile := append([]byte{}, blob...)
	hostile[12], hostile[13], hostile[14], hostile[15] = 0, 0, 0, 8 // tables = 2^27
	if err := r.UnmarshalBinary(hostile); err == nil {
		t.Fatal("expected length error for hostile tables")
	}
	hostile = append([]byte{}, blob...)
	hostile[8], hostile[9] = 63, 0 // bits out of range
	if err := r.UnmarshalBinary(hostile); err == nil {
		t.Fatal("expected range error for hostile bits")
	}
}

func TestHierarchyUnmarshalErrors(t *testing.T) {
	h := MustNew(3, cfg(2, 4, 1))
	blob, _ := h.MarshalBinary()
	var r Hierarchy
	if err := r.UnmarshalBinary(blob[:12]); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte{}, blob...)
	bad[2] = 'x'
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected magic error")
	}
	bad = append([]byte{}, blob...)
	bad[4] = 9
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected version error")
	}
	if err := r.UnmarshalBinary(blob[:len(blob)-5]); err == nil {
		t.Fatal("expected level truncation error")
	}
	if err := r.UnmarshalBinary(append(blob, 0)); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}
