package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skimsketch/internal/wire"
)

// StreamForwarder is the merger's SKSP ingress: it speaks the binary
// streaming protocol to clients exactly like a single sketchd
// (docs/FORMATS.md), but instead of applying DATA frames locally it
// hash-routes each update across the shard ring and forwards the
// per-shard sub-batches over HTTP /update.
//
// The reliability contract is preserved end to end without merger-side
// state: the client's (clientID, seq) identity is derived per shard
// (deriveKey), so the SHARD dedupe windows carry exactly-once. A
// replayed frame is re-forwarded in full; shards that already applied
// their slice answer "deduplicated" from memory, shards that missed it
// apply it — so the replay converges on exactly-once without the merger
// remembering anything across its own restarts.
//
//   - ACK: every involved shard admitted its slice.
//   - REJECT: some shard was saturated or unreachable; NOTHING may be
//     assumed applied — resend the same seq after RetryAfter (the
//     derived keys make the resend safe on shards that did apply).
//   - ERROR: some shard refused permanently (unknown stream,
//     out-of-domain value); resending cannot succeed.
type StreamForwarder struct {
	m  *Merger
	ln net.Listener

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup

	connsTotal atomic.Int64
	connsOpen  atomic.Int64
	frames     atomic.Int64
	forwarded  atomic.Int64
	rejected   atomic.Int64
	errored    atomic.Int64
}

// NewStreamForwarder wires a forwarder to a merger and a listener the
// caller opened. Call Serve to start accepting and Shutdown to drain.
func NewStreamForwarder(m *Merger, ln net.Listener) *StreamForwarder {
	f := &StreamForwarder{m: m, ln: ln, conns: make(map[net.Conn]struct{})}
	m.AttachStream(f)
	return f
}

// Serve accepts connections until the listener closes. The returned
// error is nil on a requested shutdown.
func (f *StreamForwarder) Serve() error {
	for {
		nc, err := f.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		f.mu.Lock()
		if f.closing {
			f.mu.Unlock()
			nc.Close()
			continue
		}
		f.conns[nc] = struct{}{}
		f.wg.Add(1)
		f.mu.Unlock()
		f.connsTotal.Add(1)
		f.connsOpen.Add(1)
		go func() {
			defer f.wg.Done()
			defer f.connsOpen.Add(-1)
			f.serveConn(nc)
			f.mu.Lock()
			delete(f.conns, nc)
			f.mu.Unlock()
			nc.Close()
		}()
	}
}

// Shutdown drains the listener: stop accepting, close every
// connection, wait for handlers to finish their in-flight frame. A
// client mid-frame never got an ACK and replays on reconnect; the
// derived shard keys make that replay exactly-once.
func (f *StreamForwarder) Shutdown() {
	f.ln.Close()
	f.mu.Lock()
	f.closing = true
	for nc := range f.conns {
		nc.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// serveConn runs one SKSP session: header exchange, then a frame loop.
func (f *StreamForwarder) serveConn(nc net.Conn) {
	const headerTimeout = 5 * time.Second
	rd := wire.NewReader(nc)
	w := wire.NewWriter(nc)
	nc.SetReadDeadline(time.Now().Add(headerTimeout))
	if err := rd.ReadHeader(); err != nil {
		return
	}
	nc.SetReadDeadline(time.Time{})
	if err := w.WriteHeader(); err != nil || w.Flush() != nil {
		return
	}
	for {
		ft, payload, err := rd.Next()
		if err != nil {
			return
		}
		if ft != wire.FrameData {
			return
		}
		f.frames.Add(1)
		if !f.handleData(payload, w) {
			return
		}
	}
}

// handleData decodes one DATA frame, routes it across the ring, and
// writes exactly one response frame.
func (f *StreamForwarder) handleData(payload []byte, w *wire.Writer) bool {
	var d wire.Data
	if err := wire.DecodeData(payload, &d); err != nil {
		f.errored.Add(1)
		return false // framing passed CRC but the payload is malformed: broken peer
	}
	tenant := d.Tenant
	perShard := make(map[int][]mergerUpdate)
	var total int64
	for _, g := range d.Groups {
		for _, u := range g.Updates {
			si := f.m.cfg.Route(tenant, g.Name, u.Value)
			weight := u.Weight
			perShard[si] = append(perShard[si], mergerUpdate{Stream: g.Name, Value: u.Value, Weight: &weight})
			total++
		}
	}
	// The frame's (clientID, seq) becomes the per-shard idempotency
	// identity, so shard dedupe windows carry the exactly-once promise
	// across merger restarts and frame replays.
	baseKey := fmt.Sprintf("%s:%d", d.ClientID, d.Seq)
	ctx, cancel := context.WithTimeout(context.Background(), f.m.timeout)
	out := f.m.fanOutUpdate(ctx, tenant, perShard, baseKey)
	cancel()
	switch {
	case out.err == nil:
		f.forwarded.Add(total)
		return f.reply(w, func() error {
			return w.WriteAck(wire.Ack{Seq: d.Seq, Applied: total, Duplicate: out.allDup})
		})
	case out.kind == fanPermanent:
		f.errored.Add(1)
		return f.reply(w, func() error {
			return w.WriteError(wire.ErrorFrame{Seq: d.Seq, Msg: out.err.Error()})
		})
	default:
		// Saturated or unreachable shard: retryable. The hint is the
		// largest shard Retry-After, floored at the merger's own.
		f.rejected.Add(1)
		secs := uint32(out.retryAfter / time.Second)
		if secs < mergerRetryAfterSeconds {
			secs = mergerRetryAfterSeconds
		}
		return f.reply(w, func() error {
			return w.WriteReject(wire.Reject{Seq: d.Seq, RetryAfter: secs})
		})
	}
}

// reply writes and flushes one response frame; false drops the session.
func (f *StreamForwarder) reply(w *wire.Writer, write func() error) bool {
	if err := write(); err != nil {
		return false
	}
	return w.Flush() == nil
}

// statsJSON renders the forwarder's counters for the merger's /stats.
func (f *StreamForwarder) statsJSON() map[string]any {
	return map[string]any{
		"addr":       f.ln.Addr().String(),
		"conns":      f.connsOpen.Load(),
		"connsTotal": f.connsTotal.Load(),
		"frames":     f.frames.Load(),
		"forwarded":  f.forwarded.Load(),
		"rejected":   f.rejected.Load(),
		"errors":     f.errored.Load(),
	}
}

// String implements fmt.Stringer for the boot banner.
func (f *StreamForwarder) String() string {
	return fmt.Sprintf("sksp forwarder on %s (%d shards)", f.ln.Addr(), len(f.m.cfg.Shards))
}
