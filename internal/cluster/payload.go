package cluster

import (
	"encoding/binary"
	"fmt"

	"skimsketch/internal/core"
)

// The SKSL ("SKimmed Sketch sLim payload") format is what a shard ships
// to the merger tier: the query-side view of one registered join — both
// sides' synopses plus the metadata the merger needs to estimate
// without consulting the shard again. It is the fat/slim split from
// SF-sketch applied at the cluster boundary: shards keep their fat
// update-side state (hash families, intern tables, ingest pipeline) and
// serialize only the slim counters.
//
// Layout (little-endian), after the 4-byte magic "SKSL":
//
//	u32  version (currently 1)
//	u8   aggregate (0 = COUNT, 1 = SUM)
//	u64  join value domain
//	u64  left update epoch   (updates folded into the left synopsis)
//	u64  right update epoch
//	u32  left blob length,  then that many bytes of SKHS sketch
//	u32  right blob length, then that many bytes of SKHS sketch
//
// The embedded SKHS blobs are the sketch format from docs/FORMATS.md
// and carry their own validation (magic, version, dimensions vs size).

// Aggregate codes on the SKSL wire. They deliberately mirror the
// engine's Aggregate ordering but are pinned here independently: the
// wire format must not drift if the engine enum is ever reordered.
const (
	AggCount uint8 = 0
	AggSum   uint8 = 1
)

var payloadMagic = [4]byte{'S', 'K', 'S', 'L'}

const payloadVersion = 1

// payloadFixedLen is the byte length of everything except the two
// variable-length sketch blobs.
const payloadFixedLen = 4 + 4 + 1 + 8 + 8 + 8 + 4 + 4

// Payload is one query's slim cluster payload: the decoded form of an
// SKSL blob.
type Payload struct {
	// Agg is the aggregate code (AggCount or AggSum).
	Agg uint8
	// Domain is the join's value domain [0, Domain).
	Domain uint64
	// LeftEpoch and RightEpoch count the updates folded into each side
	// when the payload was cut — the merger's staleness signal.
	LeftEpoch, RightEpoch uint64
	// Left and Right are the two synopses.
	Left, Right *core.HashSketch
}

// EncodePayload serializes p as an SKSL blob.
func EncodePayload(p *Payload) ([]byte, error) {
	if p == nil || p.Left == nil || p.Right == nil {
		return nil, fmt.Errorf("cluster: payload needs both sketches")
	}
	if p.Agg != AggCount && p.Agg != AggSum {
		return nil, fmt.Errorf("cluster: unknown aggregate code %d", p.Agg)
	}
	left, err := p.Left.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal left sketch: %w", err)
	}
	right, err := p.Right.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal right sketch: %w", err)
	}
	buf := make([]byte, 0, payloadFixedLen+len(left)+len(right))
	buf = append(buf, payloadMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, payloadVersion)
	buf = append(buf, p.Agg)
	buf = binary.LittleEndian.AppendUint64(buf, p.Domain)
	buf = binary.LittleEndian.AppendUint64(buf, p.LeftEpoch)
	buf = binary.LittleEndian.AppendUint64(buf, p.RightEpoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(left)))
	buf = append(buf, left...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(right)))
	buf = append(buf, right...)
	return buf, nil
}

// DecodePayload parses an SKSL blob. Every declared length is bounded
// by the bytes actually present before it is used — payloads arrive
// over the network, so a hostile header must not be able to demand
// memory the blob never shipped (the same validate-before-alloc
// discipline as every other decoder in this repository).
func DecodePayload(data []byte) (*Payload, error) {
	if len(data) < payloadFixedLen {
		return nil, fmt.Errorf("cluster: payload truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != payloadMagic {
		return nil, fmt.Errorf("cluster: bad payload magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != payloadVersion {
		return nil, fmt.Errorf("cluster: unsupported payload version %d", v)
	}
	p := &Payload{
		Agg:        data[8],
		Domain:     binary.LittleEndian.Uint64(data[9:17]),
		LeftEpoch:  binary.LittleEndian.Uint64(data[17:25]),
		RightEpoch: binary.LittleEndian.Uint64(data[25:33]),
	}
	if p.Agg != AggCount && p.Agg != AggSum {
		return nil, fmt.Errorf("cluster: unknown aggregate code %d", p.Agg)
	}
	rest := data[33:]
	left, rest, err := cutBlob(rest, "left")
	if err != nil {
		return nil, err
	}
	right, rest, err := cutBlob(rest, "right")
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after payload", len(rest))
	}
	p.Left = new(core.HashSketch)
	if err := p.Left.UnmarshalBinary(left); err != nil {
		return nil, fmt.Errorf("cluster: left sketch: %w", err)
	}
	p.Right = new(core.HashSketch)
	if err := p.Right.UnmarshalBinary(right); err != nil {
		return nil, fmt.Errorf("cluster: right sketch: %w", err)
	}
	return p, nil
}

// cutBlob splits one u32-length-prefixed blob off the front of data.
// The declared length is checked against the bytes present; the blob
// aliases data (no copy), which is safe because DecodePayload hands it
// straight to UnmarshalBinary.
func cutBlob(data []byte, side string) (blob, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("cluster: payload truncated before %s sketch length", side)
	}
	n := binary.LittleEndian.Uint32(data)
	if uint64(n) > uint64(len(data)-4) {
		return nil, nil, fmt.Errorf("cluster: %s sketch declares %d bytes but only %d remain", side, n, len(data)-4)
	}
	return data[4 : 4+n], data[4+n:], nil
}
