package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skimsketch/internal/core"
	"skimsketch/internal/distributed"
	"skimsketch/internal/engine"
	"skimsketch/internal/stream"
	wclient "skimsketch/internal/wire/client"
)

// testShard is a minimal in-process stand-in for a sketchd shard: a
// real engine behind the handful of endpoints the merger talks to
// (/streams, /queries, /update with Idempotency-Key dedupe, /sketch,
// /flush). Fault injection knobs drive the degraded and retry tests.
type testShard struct {
	eng *engine.Engine
	srv *httptest.Server

	mu      sync.Mutex
	applied map[string]int64 // Idempotency-Key → applied count

	updates atomic.Int64
	// saturate429 forces the next N /update calls to answer 429 with
	// Retry-After satHint; sketch429 does the same for /sketch pulls.
	saturate429 atomic.Int64
	sketch429   atomic.Int64
	sketchCalls atomic.Int64
	satHint     int
}

func testCfg() core.Config { return core.Config{Tables: 5, Buckets: 128, Seed: 11} }

func newTestShard(t *testing.T) *testShard {
	t.Helper()
	eng, err := engine.New(engine.Options{SketchConfig: testCfg()})
	if err != nil {
		t.Fatal(err)
	}
	ts := &testShard{eng: eng, applied: make(map[string]int64), satHint: 2}
	mux := http.NewServeMux()
	mux.HandleFunc("/streams", ts.handleStreams)
	mux.HandleFunc("/queries", ts.handleQueries)
	mux.HandleFunc("/update", ts.handleUpdate)
	mux.HandleFunc("/sketch", ts.handleSketch)
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		ts.eng.Flush()
		writeOK(w)
	})
	ts.srv = httptest.NewServer(mux)
	t.Cleanup(ts.srv.Close)
	return ts
}

func writeOK(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}`))
}

func (ts *testShard) tenant(r *http.Request) *engine.Tenant {
	name := r.URL.Query().Get("tenant")
	if name == "" {
		name = engine.DefaultTenant
	}
	return ts.eng.Tenant(name)
}

func (ts *testShard) handleStreams(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name   string `json:"name"`
		Domain uint64 `json:"domain"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := ts.tenant(r).DeclareStream(req.Name, req.Domain); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeOK(w)
}

func (ts *testShard) handleQueries(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name  string `json:"name"`
		Agg   string `json:"agg"`
		Left  struct{ Stream string }
		Right struct{ Stream string }
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	agg := engine.Count
	if req.Agg == "SUM" {
		agg = engine.Sum
	}
	spec := engine.QuerySpec{
		Name: req.Name, Agg: agg,
		Left:  engine.Side{Stream: req.Left.Stream},
		Right: engine.Side{Stream: req.Right.Stream},
	}
	if err := ts.tenant(r).RegisterQuery(spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeOK(w)
}

func (ts *testShard) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if n := ts.saturate429.Load(); n > 0 && ts.saturate429.CompareAndSwap(n, n-1) {
		w.Header().Set("Retry-After", strconv.Itoa(ts.satHint))
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if key != "" {
		ts.mu.Lock()
		applied, seen := ts.applied[key]
		ts.mu.Unlock()
		if seen {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"applied": applied, "deduplicated": true})
			return
		}
	}
	var batch []mergerUpdate
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tn := ts.tenant(r)
	byStream := make(map[string][]stream.Update)
	for _, u := range batch {
		weight := int64(1)
		if u.Weight != nil {
			weight = *u.Weight
		}
		byStream[u.Stream] = append(byStream[u.Stream], stream.Update{Value: u.Value, Weight: weight})
	}
	for name, ups := range byStream {
		if err := tn.IngestBatch(name, ups); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	ts.updates.Add(int64(len(batch)))
	if key != "" {
		ts.mu.Lock()
		ts.applied[key] = int64(len(batch))
		ts.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{"applied": len(batch)})
}

func (ts *testShard) handleSketch(w http.ResponseWriter, r *http.Request) {
	ts.sketchCalls.Add(1)
	if n := ts.sketch429.Load(); n > 0 && ts.sketch429.CompareAndSwap(n, n-1) {
		w.Header().Set("Retry-After", strconv.Itoa(ts.satHint))
		http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
		return
	}
	qs, err := ts.tenant(r).QuerySketches(r.URL.Query().Get("query"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	agg := AggCount
	if qs.Agg == engine.Sum {
		agg = AggSum
	}
	blob, err := EncodePayload(&Payload{
		Agg: agg, Domain: qs.Domain,
		LeftEpoch: qs.LeftEpoch, RightEpoch: qs.RightEpoch,
		Left: qs.Left, Right: qs.Right,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(blob)
}

// cluster boots n test shards plus a merger over them.
type testCluster struct {
	shards []*testShard
	merger *Merger
	srv    *httptest.Server
}

func newTestCluster(t *testing.T, n int, opts MergerOptions) *testCluster {
	t.Helper()
	tc := &testCluster{}
	cfg := Config{}
	for i := 0; i < n; i++ {
		sh := newTestShard(t)
		tc.shards = append(tc.shards, sh)
		cfg.Shards = append(cfg.Shards, Shard{Name: fmt.Sprintf("s%d", i), Addr: sh.srv.URL})
	}
	if opts.Retry == (distributed.Backoff{}) {
		opts.Retry = distributed.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Attempts: 2, Jitter: 0}
	}
	if opts.Timeout == 0 {
		opts.Timeout = 2 * time.Second
	}
	m, err := NewMerger(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	tc.merger = m
	tc.srv = httptest.NewServer(m)
	t.Cleanup(tc.srv.Close)
	return tc
}

func (tc *testCluster) post(t *testing.T, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(tc.srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func (tc *testCluster) mustPost(t *testing.T, path, body string) {
	t.Helper()
	resp := tc.post(t, path, body)
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
}

// registerSchema declares streams F, G and the COUNT query q through
// the merger broadcast path, so every shard ends up schema-identical.
func (tc *testCluster) registerSchema(t *testing.T) {
	t.Helper()
	tc.mustPost(t, "/streams", `{"name":"F","domain":1024}`)
	tc.mustPost(t, "/streams", `{"name":"G","domain":1024}`)
	tc.mustPost(t, "/queries", `{"name":"q","agg":"COUNT","left":{"stream":"F"},"right":{"stream":"G"}}`)
}

// seededBatch is the deterministic workload the bit-identity tests
// ingest: skewed on F, mildly weighted on G.
func seededBatch(n int) []mergerUpdate {
	w2 := int64(2)
	batch := make([]mergerUpdate, 0, 2*n)
	for i := 0; i < n; i++ {
		v := uint64(i*i%512 + i%7)
		batch = append(batch, mergerUpdate{Stream: "F", Value: v})
		batch = append(batch, mergerUpdate{Stream: "G", Value: uint64((i*13 + 5) % 512), Weight: &w2})
	}
	return batch
}

func marshalBatch(t *testing.T, batch []mergerUpdate) string {
	t.Helper()
	b, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

type answerResp struct {
	Query    string `json:"query"`
	Agg      string `json:"agg"`
	Estimate int64  `json:"estimate"`
	Shards   struct {
		Answered int      `json:"answered"`
		Of       int      `json:"of"`
		Missing  []string `json:"missing"`
	} `json:"shards"`
	Confidence struct {
		Coverage      float64 `json:"coverage"`
		ErrorWidening float64 `json:"errorWidening"`
		Degraded      bool    `json:"degraded"`
	} `json:"confidence"`
	Error string `json:"error"`
}

func (tc *testCluster) answer(t *testing.T, wantStatus int) answerResp {
	t.Helper()
	resp, err := http.Get(tc.srv.URL + "/answer?query=q")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("/answer status %d, want %d", resp.StatusCode, wantStatus)
	}
	var ar answerResp
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

// referenceEngine ingests the same batch into one engine — the
// single-node ground truth the cluster answer must match bit-for-bit.
func referenceEngine(t *testing.T, batch []mergerUpdate) *engine.Engine {
	t.Helper()
	eng, err := engine.New(engine.Options{SketchConfig: testCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DeclareStream("F", 1024); err != nil {
		t.Fatal(err)
	}
	if err := eng.DeclareStream("G", 1024); err != nil {
		t.Fatal(err)
	}
	err = eng.RegisterQuery(engine.QuerySpec{Name: "q", Agg: engine.Count,
		Left: engine.Side{Stream: "F"}, Right: engine.Side{Stream: "G"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range batch {
		weight := int64(1)
		if u.Weight != nil {
			weight = *u.Weight
		}
		if err := eng.Update(u.Stream, u.Value, weight); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestMergerHealthyBitIdentical is the linearity property as a
// multi-process system: a 3-shard cluster answer over hash-routed
// ingest equals a single node over the same stream exactly.
func TestMergerHealthyBitIdentical(t *testing.T) {
	tc := newTestCluster(t, 3, MergerOptions{})
	tc.registerSchema(t)
	batch := seededBatch(400)
	tc.mustPost(t, "/update", marshalBatch(t, batch))

	// Every shard must have received a share (the routing test proper is
	// elsewhere; this guards against the merger collapsing to one shard).
	for i, sh := range tc.shards {
		if sh.updates.Load() == 0 {
			t.Fatalf("shard %d received no updates", i)
		}
	}

	ref := referenceEngine(t, batch)
	want, err := ref.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	ar := tc.answer(t, http.StatusOK)
	if ar.Estimate != want.Estimate {
		t.Fatalf("cluster estimate %d != single-node estimate %d", ar.Estimate, want.Estimate)
	}
	if ar.Shards.Answered != 3 || ar.Shards.Of != 3 || len(ar.Shards.Missing) != 0 {
		t.Fatalf("healthy answer reports %+v", ar.Shards)
	}
	if ar.Confidence.Degraded || ar.Confidence.Coverage != 1 || ar.Confidence.ErrorWidening != 1 {
		t.Fatalf("healthy answer reports degraded confidence %+v", ar.Confidence)
	}
}

// TestMergerDegradedKilledShard kills one shard mid-run and asserts the
// degraded contract: /answer still succeeds, reports the shard
// coverage, and its estimate equals merging the SURVIVING shards'
// sketches exactly — no more, no less.
func TestMergerDegradedKilledShard(t *testing.T) {
	tc := newTestCluster(t, 3, MergerOptions{})
	tc.registerSchema(t)
	batch := seededBatch(400)
	tc.mustPost(t, "/update", marshalBatch(t, batch))

	const killed = 1
	tc.shards[killed].srv.Close()

	ar := tc.answer(t, http.StatusOK)
	if ar.Shards.Answered != 2 || ar.Shards.Of != 3 {
		t.Fatalf("degraded answer reports %d/%d shards, want 2/3", ar.Shards.Answered, ar.Shards.Of)
	}
	if len(ar.Shards.Missing) != 1 || ar.Shards.Missing[0] != "s1" {
		t.Fatalf("missing shards = %v, want [s1]", ar.Shards.Missing)
	}
	if !ar.Confidence.Degraded {
		t.Fatal("degraded answer not flagged degraded")
	}
	if ar.Confidence.Coverage <= 0.6 || ar.Confidence.Coverage >= 0.7 {
		t.Fatalf("coverage = %v, want 2/3", ar.Confidence.Coverage)
	}
	if ar.Confidence.ErrorWidening != 1.5 {
		t.Fatalf("errorWidening = %v, want 1.5", ar.Confidence.ErrorWidening)
	}

	// Exactness: merge the two surviving shard engines' sketches by hand
	// and estimate — the cluster's degraded number must match it.
	var lefts, rights []*core.HashSketch
	for i, sh := range tc.shards {
		if i == killed {
			continue
		}
		qs, err := sh.eng.Tenant(engine.DefaultTenant).QuerySketches("q")
		if err != nil {
			t.Fatal(err)
		}
		lefts = append(lefts, qs.Left)
		rights = append(rights, qs.Right)
	}
	mergedL, err := distributed.Merge(lefts...)
	if err != nil {
		t.Fatal(err)
	}
	mergedR, err := distributed.Merge(rights...)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.EstimateJoin(mergedL, mergedR, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Estimate != est.Total {
		t.Fatalf("degraded estimate %d != survivors' merged estimate %d", ar.Estimate, est.Total)
	}
}

// TestMergerAllShardsDown: zero answering shards is the one case that
// IS an error — 503 with a Retry-After hint, not a fabricated zero.
func TestMergerAllShardsDown(t *testing.T) {
	tc := newTestCluster(t, 2, MergerOptions{})
	tc.registerSchema(t)
	for _, sh := range tc.shards {
		sh.srv.Close()
	}
	resp, err := http.Get(tc.srv.URL + "/answer?query=q")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
}

// TestMergerPullRetriesBusyShard: a shard answering 429 to the first
// pull is retried (with its Retry-After hint flooring the delay) and
// the answer comes back healthy, not degraded.
func TestMergerPullRetriesBusyShard(t *testing.T) {
	tc := newTestCluster(t, 2, MergerOptions{
		Retry: distributed.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Attempts: 3, Jitter: 0},
	})
	tc.registerSchema(t)
	tc.mustPost(t, "/update", marshalBatch(t, seededBatch(50)))
	tc.shards[0].satHint = 0 // keep the hint tiny so the test stays fast
	tc.shards[0].sketch429.Store(1)
	ar := tc.answer(t, http.StatusOK)
	if ar.Shards.Answered != 2 || ar.Confidence.Degraded {
		t.Fatalf("busy shard was not retried: %+v", ar.Shards)
	}
	if calls := tc.shards[0].sketchCalls.Load(); calls < 2 {
		t.Fatalf("shard 0 saw %d pull attempts, want >= 2", calls)
	}
}

// TestMergerUpdateRejectPropagates: a saturated shard turns the whole
// batch into a 429 with the shard's Retry-After hint (nothing may be
// assumed applied; the client retries the batch under the same key).
func TestMergerUpdateRejectPropagates(t *testing.T) {
	tc := newTestCluster(t, 2, MergerOptions{})
	tc.registerSchema(t)
	tc.shards[0].satHint = 7
	tc.shards[0].saturate429.Store(1)
	tc.shards[1].satHint = 7
	tc.shards[1].saturate429.Store(1)
	req, err := http.NewRequest(http.MethodPost, tc.srv.URL+"/update", bytes.NewReader([]byte(marshalBatch(t, seededBatch(20)))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Idempotency-Key", "harness:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 7 {
		t.Fatalf("Retry-After = %q, want >= 7 (the shard hint)", resp.Header.Get("Retry-After"))
	}

	// Retrying the same batch under the same key converges to
	// exactly-once: the shard that already applied dedupes, the
	// saturated one applies.
	req2, err := http.NewRequest(http.MethodPost, tc.srv.URL+"/update", bytes.NewReader([]byte(marshalBatch(t, seededBatch(20)))))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Idempotency-Key", "harness:1")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d, want 200", resp2.StatusCode)
	}
	ref := referenceEngine(t, seededBatch(20))
	want, err := ref.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	ar := tc.answer(t, http.StatusOK)
	if ar.Estimate != want.Estimate {
		t.Fatalf("estimate after retry %d != exactly-once reference %d (double apply?)", ar.Estimate, want.Estimate)
	}
}

func TestDeriveKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"client:42", "client.s3:42"},
		{"a.b:c:9", "a.b:c.s3:9"}, // split on the LAST colon, like the shards do
		{"", ""},
		{"nocolon", ""},
		{":5", ""},
	}
	for _, tc := range cases {
		if got := deriveKey(tc.in, 3); got != tc.want {
			t.Errorf("deriveKey(%q, 3) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestMergerEpochCache: with a non-zero epoch the second answer is
// served from cache (no new pulls); with epoch 0 every answer re-pulls.
func TestMergerEpochCache(t *testing.T) {
	tc := newTestCluster(t, 2, MergerOptions{Epoch: time.Hour})
	tc.registerSchema(t)
	tc.mustPost(t, "/update", marshalBatch(t, seededBatch(50)))
	first := tc.answer(t, http.StatusOK)
	pulls := tc.shards[0].sketchCalls.Load()
	second := tc.answer(t, http.StatusOK)
	if tc.shards[0].sketchCalls.Load() != pulls {
		t.Fatal("cached answer re-pulled the shards inside the epoch")
	}
	if first.Estimate != second.Estimate {
		t.Fatal("cached answer changed the estimate")
	}
}

// TestStreamForwarderEndToEnd drives the merger's SKSP ingress with the
// real wire client: frames are hash-routed to the shards over HTTP, a
// REJECTed frame is resent by the client and converges to exactly-once
// via the derived per-shard keys, and the final cluster answer matches
// the single-node reference bit-for-bit.
func TestStreamForwarderEndToEnd(t *testing.T) {
	tc := newTestCluster(t, 3, MergerOptions{})
	tc.registerSchema(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fwd := NewStreamForwarder(tc.merger, ln)
	serveErr := make(chan error, 1)
	go func() { serveErr <- fwd.Serve() }()
	defer func() {
		fwd.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("forwarder serve: %v", err)
		}
	}()

	// One shard rejects its first /update: the client must see a REJECT
	// for the whole frame and resend it.
	tc.shards[0].satHint = 0
	tc.shards[0].saturate429.Store(1)

	batch := seededBatch(200)
	groups := []stream.Group{{Name: "F"}, {Name: "G"}}
	for _, u := range batch {
		weight := int64(1)
		if u.Weight != nil {
			weight = *u.Weight
		}
		gi := 0
		if u.Stream == "G" {
			gi = 1
		}
		groups[gi].Updates = append(groups[gi].Updates, stream.Update{Value: u.Value, Weight: weight})
	}
	conn := wclient.New(ln.Addr().String(), wclient.Options{
		ClientID: "sksp-test",
		Backoff:  distributed.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Attempts: 10, Jitter: 0},
	})
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := conn.Send(ctx, "", groups)
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != int64(len(batch)) {
		t.Fatalf("ACK applied %d, want %d", out.Applied, len(batch))
	}
	if out.Rejected429 == 0 {
		t.Fatal("saturated shard produced no REJECT; fault injection broke")
	}

	ref := referenceEngine(t, batch)
	want, err := ref.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	ar := tc.answer(t, http.StatusOK)
	if ar.Estimate != want.Estimate {
		t.Fatalf("SKSP-ingested cluster estimate %d != reference %d (replay double-applied?)", ar.Estimate, want.Estimate)
	}
}
