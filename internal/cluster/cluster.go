// Package cluster runs sketchd as a multi-process system: shard
// processes each hold a value-partition of every registered synopsis,
// and a merger tier routes ingest to shards, pulls their slim sketch
// payloads, and answers global joins over distributed.Merge of the
// shard synopses. The whole design rides on sketch linearity (the
// paper's central property): because every synopsis is a linear
// projection of the frequency vector, the merge of per-shard sketches
// over a value partition is bit-identical to one sketch maintained
// serially over the whole stream — so a healthy cluster answers exactly
// what a single node would, and a degraded cluster answers exactly the
// surviving partition.
//
// Membership is a static JSON list (Config); routing is deterministic
// FNV-1a over (tenant, stream, value), so every process — mergers,
// shards, harnesses — computes the same placement with no coordination.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/url"
	"os"
	"strings"
)

// Shard is one member of the ring: a sketchd process reachable at a
// base HTTP URL (e.g. "http://10.0.0.7:8080").
type Shard struct {
	// Name identifies the shard in stats, logs, and degraded-answer
	// reports. Names must be unique within a Config.
	Name string `json:"name"`
	// Addr is the shard's HTTP base URL. Cross-node calls append API
	// paths (/update, /sketch, ...) to it.
	Addr string `json:"addr"`
}

// Config is the static cluster membership: the ordered shard list that
// defines the hash ring. Order matters — routing is position-based — so
// every process in the cluster must load the same file. Growing or
// reordering the ring invalidates existing placement (sketches do not
// move); rebuilding from a checkpoint replay is the resize story for
// now.
type Config struct {
	Shards []Shard `json:"shards"`
}

// Validate checks the membership list: at least one shard, unique
// non-empty names, and well-formed absolute http(s) URLs.
func (c Config) Validate() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("cluster: config has no shards")
	}
	seen := make(map[string]struct{}, len(c.Shards))
	addrs := make(map[string]struct{}, len(c.Shards))
	for i, s := range c.Shards {
		if s.Name == "" {
			return fmt.Errorf("cluster: shard %d has no name", i)
		}
		if _, dup := seen[s.Name]; dup {
			return fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = struct{}{}
		u, err := url.Parse(s.Addr)
		if err != nil {
			return fmt.Errorf("cluster: shard %q addr: %w", s.Name, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: shard %q addr %q is not an absolute http(s) URL", s.Name, s.Addr)
		}
		norm := strings.TrimSuffix(s.Addr, "/")
		if _, dup := addrs[norm]; dup {
			return fmt.Errorf("cluster: shard %q addr %q repeats an earlier shard's address", s.Name, s.Addr)
		}
		addrs[norm] = struct{}{}
	}
	return nil
}

// LoadConfig reads and validates a membership file: a JSON object
// {"shards":[{"name":"s0","addr":"http://..."}, ...]}. Unknown fields
// are rejected so a typo'd key fails loudly at boot instead of silently
// shrinking the ring.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("cluster: open config: %w", err)
	}
	defer f.Close()
	var c Config
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("cluster: parse config %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("cluster: config %s: %w", path, err)
	}
	return c, nil
}

// Route places one stream element on the ring: FNV-1a 64 over the
// (tenant, stream, value) triple, mod the shard count. Routing at value
// granularity — not stream granularity — is what makes degraded answers
// meaningful: every shard holds a partial synopsis of every stream, so
// the merge of any shard subset is exactly the synopsis of that subset's
// value partition, and a healthy merge of all shards is bit-identical
// to a single-node synopsis by linearity. (Routing whole streams to
// single shards would lose the entire stream with its shard.)
//
// Tenant and stream names are length-prefixed in the hash input so the
// triples ("ab","c",v) and ("a","bc",v) cannot collide.
func (c Config) Route(tenant, stream string, value uint64) int {
	h := fnv.New64a()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(tenant)))
	h.Write(n[:])
	h.Write([]byte(tenant))
	binary.LittleEndian.PutUint64(n[:], uint64(len(stream)))
	h.Write(n[:])
	h.Write([]byte(stream))
	binary.LittleEndian.PutUint64(n[:], value)
	h.Write(n[:])
	return int(h.Sum64() % uint64(len(c.Shards)))
}
