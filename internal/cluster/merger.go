package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skimsketch/internal/core"
	"skimsketch/internal/distributed"
)

// Merger is the cluster's front tier: an http.Handler that hash-routes
// ingest to the shard ring, broadcasts registrations so every shard
// holds the same schema, and answers global joins by pulling each
// shard's slim SKSL payload and merging the synopses through
// distributed.Merge.
//
// Failure handling is first-class. Every cross-node call carries a
// context deadline — there are no deadline-less dials anywhere in the
// path — and a lagging or dead shard degrades an answer instead of
// failing it: the merger estimates over the shards it has and reports
//
//	"shards":     {"answered": k, "of": n, "missing": [...]}
//	"confidence": {"coverage": k/n, "errorWidening": n/k, "degraded": true}
//
// Because routing partitions values (see Config.Route), the degraded
// estimate is exactly the join over the surviving value partition: the
// merge of k shard synopses is bit-identical to a synopsis maintained
// over precisely those shards' updates, so coverage k/n is an honest
// statement of what the number means. The paper's ±ε guarantee applies
// to the covered partition; errorWidening = n/k is the factor by which
// the missing mass could scale the true total in the uniform case.
type Merger struct {
	cfg     Config
	client  *http.Client
	timeout time.Duration
	epoch   time.Duration
	retry   distributed.Backoff
	now     func() time.Time
	mux     *http.ServeMux

	// cacheMu guards cache, the epoch-TTL store of pulled global
	// answers. With epoch 0 every /answer pulls fresh payloads — the
	// deterministic mode the integration harness uses.
	cacheMu sync.Mutex
	cache   map[string]cachedAnswer

	draining atomic.Bool

	// Counters for /stats.
	updateCalls    atomic.Int64
	updatesRouted  atomic.Int64
	updateRejected atomic.Int64
	answers        atomic.Int64
	answersCached  atomic.Int64
	degraded       atomic.Int64
	pulls          atomic.Int64
	pullFailures   atomic.Int64
	start          time.Time

	// stream is the SKSP ingress forwarder, when one is attached; its
	// counters render under /stats "stream".
	stream *StreamForwarder
}

// mergerRetryAfterSeconds is the Retry-After hint the merger attaches
// to its own 429/503 responses when the shards did not supply a larger
// one: cross-node retries are more expensive than local ones, so the
// floor matches sketchd's single-node hint.
const mergerRetryAfterSeconds = 1

// maxPayloadBytes caps one shard's SKSL response. The largest sensible
// payload (two 64×(1<<18) sketches) is well under this; a response
// exceeding it is a broken or hostile peer, not a big sketch.
const maxPayloadBytes = 1 << 28

// MergerOptions tunes a Merger. The zero value is usable.
type MergerOptions struct {
	// Timeout bounds every cross-node call (dial through body read).
	// <= 0 defaults to 5s.
	Timeout time.Duration
	// Epoch is the pull-cache TTL: a global answer younger than this is
	// served from cache without re-pulling the shards. 0 pulls fresh on
	// every /answer.
	Epoch time.Duration
	// Client overrides the HTTP client for cross-node calls; nil builds
	// one with connect and request timeouts derived from Timeout.
	Client *http.Client
	// Retry is the per-shard pull retry policy; the zero value uses 3
	// attempts, 50ms base. Retry-After hints from shards floor the
	// delays (distributed.RetryAfterError).
	Retry distributed.Backoff
	// Now is the clock, for tests. nil uses time.Now.
	Now func() time.Time
}

type cachedAnswer struct {
	resp map[string]any
	at   time.Time
}

// NewMerger validates the membership config and builds the handler.
func NewMerger(cfg Config, opts MergerOptions) (*Merger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				DialContext:           (&net.Dialer{Timeout: timeout}).DialContext,
				ResponseHeaderTimeout: timeout,
				MaxIdleConnsPerHost:   64,
				IdleConnTimeout:       90 * time.Second,
			},
		}
	}
	retry := opts.Retry
	if retry == (distributed.Backoff{}) {
		retry = distributed.Backoff{Base: 50 * time.Millisecond, Max: time.Second, Attempts: 3}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	m := &Merger{
		cfg:     cfg,
		client:  client,
		timeout: timeout,
		epoch:   opts.Epoch,
		retry:   retry,
		now:     now,
		mux:     http.NewServeMux(),
		cache:   make(map[string]cachedAnswer),
		start:   time.Now(),
	}
	// Registration and admin endpoints broadcast to every shard so the
	// ring stays schema-uniform; reads of the (uniform) schema are
	// answered by the first shard.
	m.mux.HandleFunc("/streams", m.handleBroadcast)
	m.mux.HandleFunc("/predicates", m.handleBroadcast)
	m.mux.HandleFunc("/queries", m.handleBroadcast)
	m.mux.HandleFunc("/queries/", m.handleBroadcast)
	m.mux.HandleFunc("/tenants", m.handleBroadcast)
	m.mux.HandleFunc("/watches", m.handleBroadcast)
	m.mux.HandleFunc("/watches/", m.handleBroadcast)
	m.mux.HandleFunc("/flush", m.handleBroadcast)
	m.mux.HandleFunc("/update", m.handleUpdate)
	m.mux.HandleFunc("/answer", m.handleAnswer)
	m.mux.HandleFunc("/sketch", m.handleSketch)
	m.mux.HandleFunc("/stats", m.handleStats)
	m.mux.HandleFunc("/healthz", m.handleHealthz)
	return m, nil
}

// SetDraining flips the readiness probe to 503 during shutdown drain.
func (m *Merger) SetDraining() { m.draining.Store(true) }

// AttachStream registers a StreamForwarder for /stats reporting.
func (m *Merger) AttachStream(f *StreamForwarder) { m.stream = f }

// Shards returns the membership list (a copy).
func (m *Merger) Shards() []Shard { return append([]Shard(nil), m.cfg.Shards...) }

// ServeHTTP resolves the tenant scope exactly like sketchd's flat API
// (path prefix /t/{tenant}/ or ?tenant=), then muxes. The resolved
// tenant travels to shards as a ?tenant= query parameter.
func (m *Merger) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	tenant := ""
	if rest, ok := strings.CutPrefix(r.URL.Path, "/t/"); ok {
		name, tail, found := strings.Cut(rest, "/")
		if !found || name == "" {
			mWriteErr(w, http.StatusNotFound, errors.New("tenant-scoped paths are /t/{tenant}/{endpoint}"))
			return
		}
		tenant = name
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/" + tail
		r = r2
	}
	if q := r.URL.Query().Get("tenant"); q != "" {
		if tenant != "" && q != tenant {
			mWriteErr(w, http.StatusBadRequest, fmt.Errorf("conflicting tenants %q (path) and %q (query)", tenant, q))
			return
		}
		tenant = q
	}
	if tenant != "" {
		r = r.WithContext(context.WithValue(r.Context(), mergerTenantKey{}, tenant))
	}
	m.mux.ServeHTTP(w, r)
}

type mergerTenantKey struct{}

func mergerTenant(r *http.Request) string {
	t, _ := r.Context().Value(mergerTenantKey{}).(string)
	return t
}

func mWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func mWriteErr(w http.ResponseWriter, status int, err error) {
	mWriteJSON(w, status, map[string]string{"error": err.Error()})
}

// writeRetryable renders a 429 or 503 with its Retry-After hint — the
// pair travels together so well-behaved clients never fall back to
// blind backoff.
func writeRetryable(w http.ResponseWriter, status int, after time.Duration, err error) {
	secs := int(after / time.Second)
	if secs < mergerRetryAfterSeconds {
		secs = mergerRetryAfterSeconds
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	if status == http.StatusTooManyRequests {
		mWriteErr(w, http.StatusTooManyRequests, err)
		return
	}
	mWriteErr(w, status, err)
}

// shardURL builds a shard API URL with the tenant (if any) and extra
// query parameters attached.
func (m *Merger) shardURL(s Shard, path, tenant string, params url.Values) string {
	base := strings.TrimSuffix(s.Addr, "/") + path
	if params == nil {
		params = url.Values{}
	}
	if tenant != "" {
		params.Set("tenant", tenant)
	}
	if enc := params.Encode(); enc != "" {
		return base + "?" + enc
	}
	return base
}

// forward runs one cross-node call under the merger's deadline and
// returns the shard's response with its body fully read (capped).
func (m *Merger) forward(ctx context.Context, method, u string, body []byte, header http.Header) (status int, respBody []byte, respHeader http.Header, err error) {
	cctx, cancel := context.WithTimeout(ctx, m.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(cctx, method, u, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if body != nil && req.Header.Get("Content-Type") == "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPayloadBytes+1))
	if err != nil {
		return 0, nil, nil, err
	}
	if len(b) > maxPayloadBytes {
		return 0, nil, nil, fmt.Errorf("cluster: response from %s exceeds %d bytes", u, maxPayloadBytes)
	}
	return resp.StatusCode, b, resp.Header, nil
}

// handleBroadcast forwards a registration/admin request to every shard
// (POST/DELETE) or to the first shard (GET — the schema is uniform by
// construction, so any shard can answer). All shards must accept a
// mutation; the first refusal or transport failure is propagated and
// the caller retries the whole request (registrations are idempotent on
// the shard side).
func (m *Merger) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	tenant := mergerTenant(r)
	if r.Method == http.MethodGet {
		status, body, hdr, err := m.forward(r.Context(), http.MethodGet, m.shardURL(m.cfg.Shards[0], r.URL.Path, tenant, nil), nil, nil)
		if err != nil {
			writeRetryable(w, http.StatusServiceUnavailable, 0, fmt.Errorf("shard %s: %w", m.cfg.Shards[0].Name, err))
			return
		}
		copyResponse(w, status, body, hdr)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPayloadBytes+1))
	if err != nil || len(body) > maxPayloadBytes {
		mWriteErr(w, http.StatusBadRequest, errors.New("unreadable or oversized request body"))
		return
	}
	type result struct {
		shard  Shard
		status int
		body   []byte
		header http.Header
		err    error
	}
	results := make([]result, len(m.cfg.Shards))
	var wg sync.WaitGroup
	for i, s := range m.cfg.Shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			st, b, h, err := m.forward(r.Context(), r.Method, m.shardURL(s, r.URL.Path, tenant, nil), body, nil)
			results[i] = result{shard: s, status: st, body: b, header: h, err: err}
		}(i, s)
	}
	wg.Wait()
	// Transport failures dominate (the mutation may be half-applied
	// across the ring; the client must retry it everywhere), then the
	// first shard-side refusal, then success.
	for _, res := range results {
		if res.err != nil {
			writeRetryable(w, http.StatusServiceUnavailable, 0, fmt.Errorf("shard %s: %w", res.shard.Name, res.err))
			return
		}
	}
	for _, res := range results {
		if res.status >= 300 {
			if res.status == http.StatusTooManyRequests {
				writeRetryable(w, http.StatusTooManyRequests, distributed.ParseRetryAfter(res.header.Get("Retry-After"), m.now()), fmt.Errorf("shard %s refused", res.shard.Name))
				return
			}
			copyResponse(w, res.status, res.body, res.header)
			return
		}
	}
	copyResponse(w, results[0].status, results[0].body, results[0].header)
}

func copyResponse(w http.ResponseWriter, status int, body []byte, hdr http.Header) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// mergerUpdate mirrors sketchd's update object. Weight stays a pointer
// so an omitted weight (default 1) survives re-encoding unchanged.
type mergerUpdate struct {
	Tenant string `json:"tenant,omitempty"`
	Stream string `json:"stream"`
	Value  uint64 `json:"value"`
	Weight *int64 `json:"weight,omitempty"`
}

// handleUpdate routes a JSON update batch across the ring: each element
// goes to the shard Route picks for its (tenant, stream, value), so the
// per-shard sub-batches partition the request. Sub-batches are
// forwarded concurrently, each under the cross-node deadline, with
// per-shard idempotency keys derived from the caller's (see deriveKey)
// so a retried batch is exactly-once on every shard even when the first
// attempt half-landed.
func (m *Merger) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		mWriteErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	m.updateCalls.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPayloadBytes+1))
	if err != nil || len(body) > maxPayloadBytes {
		mWriteErr(w, http.StatusBadRequest, errors.New("unreadable or oversized request body"))
		return
	}
	var batch []mergerUpdate
	if err := json.Unmarshal(body, &batch); err != nil {
		var one mergerUpdate
		if err := json.Unmarshal(body, &one); err != nil {
			mWriteErr(w, http.StatusBadRequest, errors.New("expected a JSON update object or array of them"))
			return
		}
		batch = []mergerUpdate{one}
	}
	tenant := mergerTenant(r)
	for _, u := range batch {
		if u.Tenant == "" {
			continue
		}
		if tenant != "" && u.Tenant != tenant {
			mWriteErr(w, http.StatusBadRequest, fmt.Errorf("batch mixes tenants %q and %q; one tenant per request", tenant, u.Tenant))
			return
		}
		tenant = u.Tenant
	}
	perShard := make(map[int][]mergerUpdate)
	for _, u := range batch {
		u.Tenant = "" // already carried in the forwarded URL
		si := m.cfg.Route(tenant, u.Stream, u.Value)
		perShard[si] = append(perShard[si], u)
	}
	baseKey := r.Header.Get("Idempotency-Key")
	out := m.fanOutUpdate(r.Context(), tenant, perShard, baseKey)
	if out.err != nil {
		switch out.kind {
		case fanPermanent:
			copyResponse(w, out.status, out.body, out.header)
		case fanRejected:
			m.updateRejected.Add(1)
			writeRetryable(w, http.StatusTooManyRequests, out.retryAfter, out.err)
		default:
			m.updateRejected.Add(1)
			writeRetryable(w, http.StatusServiceUnavailable, out.retryAfter, out.err)
		}
		return
	}
	m.updatesRouted.Add(int64(len(batch)))
	resp := map[string]any{"applied": len(batch), "shards": len(perShard)}
	if out.allDup {
		resp["deduplicated"] = true
	}
	mWriteJSON(w, http.StatusOK, resp)
}

// deriveKey scopes a client idempotency key "client:seq" to one shard:
// "client.s<i>:seq". The merger fans one logical batch out to several
// shards, and a retry after a partial failure must not double-apply on
// the shards that already accepted — each shard's dedupe window sees a
// stable per-shard identity, so replays are answered from memory there.
// Batches without a key are at-least-once per shard under merger-level
// retry, exactly like keyless single-node batches.
func deriveKey(baseKey string, shard int) string {
	if baseKey == "" {
		return ""
	}
	i := strings.LastIndexByte(baseKey, ':')
	if i <= 0 {
		return "" // malformed; let the shard reject or treat as keyless
	}
	return fmt.Sprintf("%s.s%d%s", baseKey[:i], shard, baseKey[i:])
}

type fanKind int

const (
	fanPermanent fanKind = iota + 1 // 4xx from a shard: do not retry
	fanRejected                     // 429: nothing applied there, retry whole batch
	fanUnreachable                  // transport failure: retry whole batch
)

type fanResult struct {
	err        error
	kind       fanKind
	status     int
	body       []byte
	header     http.Header
	retryAfter time.Duration
	allDup     bool
}

// fanOutUpdate forwards per-shard sub-batches concurrently and folds
// the outcomes: permanent refusals dominate (the request itself is
// bad), then 429s (retryable, with the largest shard hint), then
// transport failures. Success requires every involved shard to accept.
func (m *Merger) fanOutUpdate(ctx context.Context, tenant string, perShard map[int][]mergerUpdate, baseKey string) fanResult {
	type shardOut struct {
		shard      Shard
		status     int
		body       []byte
		header     http.Header
		dup        bool
		err        error
		retryAfter time.Duration
	}
	outs := make([]shardOut, 0, len(perShard))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, items := range perShard {
		wg.Add(1)
		go func(si int, items []mergerUpdate) {
			defer wg.Done()
			s := m.cfg.Shards[si]
			body, err := json.Marshal(items)
			if err != nil {
				mu.Lock()
				outs = append(outs, shardOut{shard: s, err: err})
				mu.Unlock()
				return
			}
			hdr := http.Header{}
			if key := deriveKey(baseKey, si); key != "" {
				hdr.Set("Idempotency-Key", key)
			}
			status, respBody, respHdr, err := m.forward(ctx, http.MethodPost, m.shardURL(s, "/update", tenant, nil), body, hdr)
			o := shardOut{shard: s, status: status, body: respBody, header: respHdr, err: err}
			if err == nil {
				o.retryAfter = distributed.ParseRetryAfter(respHdr.Get("Retry-After"), m.now())
				var ack struct {
					Deduplicated bool `json:"deduplicated"`
				}
				if json.Unmarshal(respBody, &ack) == nil {
					o.dup = ack.Deduplicated
				}
			}
			mu.Lock()
			outs = append(outs, o)
			mu.Unlock()
		}(si, items)
	}
	wg.Wait()
	res := fanResult{allDup: len(outs) > 0}
	for _, o := range outs {
		if o.err == nil && o.status < 300 && !o.dup {
			res.allDup = false
		}
	}
	for _, o := range outs {
		if o.err == nil && o.status >= 300 && o.status != http.StatusTooManyRequests {
			return fanResult{err: fmt.Errorf("shard %s refused: %s", o.shard.Name, strings.TrimSpace(string(o.body))), kind: fanPermanent, status: o.status, body: o.body, header: o.header}
		}
	}
	for _, o := range outs {
		if o.err == nil && o.status == http.StatusTooManyRequests {
			if res.retryAfter < o.retryAfter {
				res.retryAfter = o.retryAfter
			}
			res.err = fmt.Errorf("shard %s saturated; retry whole batch", o.shard.Name)
			res.kind = fanRejected
		}
	}
	if res.err != nil {
		return res
	}
	for _, o := range outs {
		if o.err != nil {
			return fanResult{err: fmt.Errorf("shard %s unreachable: %w", o.shard.Name, o.err), kind: fanUnreachable}
		}
	}
	return res
}

// pullResult is one shard's contribution to a global answer.
type pullResult struct {
	shard   Shard
	payload *Payload
	err     error
}

// pullPayloads fetches every shard's SKSL payload concurrently. Each
// pull runs under the merger's retry policy with per-attempt deadlines;
// a shard 429/503 carries its Retry-After hint into the policy via
// distributed.RetryAfterError, so the merger honors shard backpressure
// instead of hammering a recovering node.
func (m *Merger) pullPayloads(ctx context.Context, tenant, query string) []pullResult {
	results := make([]pullResult, len(m.cfg.Shards))
	var wg sync.WaitGroup
	for i, s := range m.cfg.Shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			var p *Payload
			err := m.retry.Retry(ctx, func(ctx context.Context) error {
				var ferr error
				p, ferr = m.fetchPayload(ctx, s, tenant, query)
				return ferr
			})
			if err != nil {
				m.pullFailures.Add(1)
			}
			results[i] = pullResult{shard: s, payload: p, err: err}
		}(i, s)
	}
	wg.Wait()
	return results
}

// fetchPayload performs one GET /sketch attempt against one shard.
func (m *Merger) fetchPayload(ctx context.Context, s Shard, tenant, query string) (*Payload, error) {
	m.pulls.Add(1)
	params := url.Values{"query": {query}}
	status, body, hdr, err := m.forward(ctx, http.MethodGet, m.shardURL(s, "/sketch", tenant, params), nil, nil)
	if err != nil {
		return nil, fmt.Errorf("pull %s: %w", s.Name, err)
	}
	switch {
	case status == http.StatusOK:
		p, err := DecodePayload(body)
		if err != nil {
			return nil, fmt.Errorf("pull %s: %w", s.Name, err)
		}
		return p, nil
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		return nil, &distributed.RetryAfterError{
			After: distributed.ParseRetryAfter(hdr.Get("Retry-After"), m.now()),
			Err:   fmt.Errorf("pull %s: shard busy (%d)", s.Name, status),
		}
	default:
		return nil, fmt.Errorf("pull %s: status %d: %s", s.Name, status, strings.TrimSpace(string(body)))
	}
}

// globalAnswer pulls, merges, and estimates one query across the ring.
func (m *Merger) globalAnswer(ctx context.Context, tenant, query string) (map[string]any, int, error) {
	pulls := m.pullPayloads(ctx, tenant, query)
	var lefts, rights []*core.HashSketch
	var missing []string
	var ref *Payload
	var leftEpoch, rightEpoch uint64
	for _, pr := range pulls {
		if pr.err != nil {
			missing = append(missing, pr.shard.Name)
			continue
		}
		p := pr.payload
		if ref == nil {
			ref = p
		} else if p.Agg != ref.Agg || p.Domain != ref.Domain {
			return nil, http.StatusInternalServerError,
				fmt.Errorf("shard %s disagrees on query metadata (agg %d domain %d vs agg %d domain %d): ring schema has diverged",
					pr.shard.Name, p.Agg, p.Domain, ref.Agg, ref.Domain)
		}
		lefts = append(lefts, p.Left)
		rights = append(rights, p.Right)
		leftEpoch += p.LeftEpoch
		rightEpoch += p.RightEpoch
	}
	n := len(m.cfg.Shards)
	k := len(lefts)
	if k == 0 {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("no shard answered for query %q (%d tried)", query, n)
	}
	mergedL, err := distributed.Merge(lefts...)
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("merge left synopses: %w", err)
	}
	mergedR, err := distributed.Merge(rights...)
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("merge right synopses: %w", err)
	}
	est, err := core.EstimateJoin(mergedL, mergedR, ref.Domain, nil)
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("estimate over merged synopses: %w", err)
	}
	agg := "COUNT"
	if ref.Agg == AggSum {
		agg = "SUM"
	}
	if missing == nil {
		missing = []string{} // never null on the wire
	}
	resp := map[string]any{
		"query":    query,
		"agg":      agg,
		"estimate": est.Total,
		"detail": map[string]any{
			"denseDense":   est.DenseDense,
			"denseSparse":  est.DenseSparse,
			"sparseDense":  est.SparseDense,
			"sparseSparse": est.SparseSparse,
			"denseCountF":  est.DenseCountF,
			"denseCountG":  est.DenseCountG,
		},
		"shards": map[string]any{"answered": k, "of": n, "missing": missing},
		"confidence": map[string]any{
			"coverage":      float64(k) / float64(n),
			"errorWidening": float64(n) / float64(k),
			"degraded":      k < n,
		},
		"epochs": map[string]uint64{"left": leftEpoch, "right": rightEpoch},
	}
	return resp, http.StatusOK, nil
}

func (m *Merger) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		mWriteErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	query := r.URL.Query().Get("query")
	if query == "" {
		mWriteErr(w, http.StatusBadRequest, errors.New("missing ?query="))
		return
	}
	tenant := mergerTenant(r)
	m.answers.Add(1)
	key := tenant + "\x00" + query
	if m.epoch > 0 {
		m.cacheMu.Lock()
		c, ok := m.cache[key]
		m.cacheMu.Unlock()
		if ok && m.now().Sub(c.at) < m.epoch {
			m.answersCached.Add(1)
			mWriteJSON(w, http.StatusOK, c.resp)
			return
		}
	}
	resp, status, err := m.globalAnswer(r.Context(), tenant, query)
	if err != nil {
		if status == http.StatusServiceUnavailable {
			writeRetryable(w, status, 0, err)
			return
		}
		mWriteErr(w, status, err)
		return
	}
	if deg, _ := resp["confidence"].(map[string]any)["degraded"].(bool); deg {
		m.degraded.Add(1)
	}
	if m.epoch > 0 {
		m.cacheMu.Lock()
		m.cache[key] = cachedAnswer{resp: resp, at: m.now()}
		m.cacheMu.Unlock()
	}
	mWriteJSON(w, http.StatusOK, resp)
}

// handleSketch serves the MERGED global SKSL payload for a query — the
// same format the shards serve — which makes merger tiers stackable: a
// higher-level merger can pull a whole sub-cluster through one address.
// Degraded coverage is reported in X-Cluster-Shards ("k/n") rather than
// an error, mirroring /answer.
func (m *Merger) handleSketch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		mWriteErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	query := r.URL.Query().Get("query")
	if query == "" {
		mWriteErr(w, http.StatusBadRequest, errors.New("missing ?query="))
		return
	}
	tenant := mergerTenant(r)
	pulls := m.pullPayloads(r.Context(), tenant, query)
	var lefts, rights []*core.HashSketch
	var ref *Payload
	var leftEpoch, rightEpoch uint64
	for _, pr := range pulls {
		if pr.err != nil || pr.payload == nil {
			continue
		}
		if ref == nil {
			ref = pr.payload
		}
		lefts = append(lefts, pr.payload.Left)
		rights = append(rights, pr.payload.Right)
		leftEpoch += pr.payload.LeftEpoch
		rightEpoch += pr.payload.RightEpoch
	}
	if ref == nil {
		writeRetryable(w, http.StatusServiceUnavailable, 0, fmt.Errorf("no shard answered for query %q", query))
		return
	}
	mergedL, err := distributed.Merge(lefts...)
	if err != nil {
		mWriteErr(w, http.StatusInternalServerError, err)
		return
	}
	mergedR, err := distributed.Merge(rights...)
	if err != nil {
		mWriteErr(w, http.StatusInternalServerError, err)
		return
	}
	blob, err := EncodePayload(&Payload{
		Agg: ref.Agg, Domain: ref.Domain,
		LeftEpoch: leftEpoch, RightEpoch: rightEpoch,
		Left: mergedL, Right: mergedR,
	})
	if err != nil {
		mWriteErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.Header().Set("X-Cluster-Shards", fmt.Sprintf("%d/%d", len(lefts), len(m.cfg.Shards)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

func (m *Merger) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		mWriteErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	shards := make([]map[string]any, 0, len(m.cfg.Shards))
	for _, s := range m.cfg.Shards {
		shards = append(shards, map[string]any{"name": s.Name, "addr": s.Addr})
	}
	resp := map[string]any{
		"role":   "merger",
		"shards": shards,
		"ingest": map[string]int64{
			"calls":    m.updateCalls.Load(),
			"routed":   m.updatesRouted.Load(),
			"rejected": m.updateRejected.Load(),
		},
		"answers": map[string]int64{
			"total":    m.answers.Load(),
			"cached":   m.answersCached.Load(),
			"degraded": m.degraded.Load(),
		},
		"pulls": map[string]int64{
			"total":    m.pulls.Load(),
			"failures": m.pullFailures.Load(),
		},
		"epochSeconds":  m.epoch.Seconds(),
		"uptimeSeconds": time.Since(m.start).Seconds(),
	}
	if m.stream != nil {
		resp["stream"] = m.stream.statsJSON()
	}
	mWriteJSON(w, http.StatusOK, resp)
}

func (m *Merger) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		mWriteErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	if m.draining.Load() {
		mWriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	mWriteJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
