package cluster

import (
	"encoding/binary"
	"strings"
	"testing"

	"skimsketch/internal/core"
)

func testPayload(t *testing.T) *Payload {
	t.Helper()
	cfg := core.Config{Tables: 5, Buckets: 64, Seed: 7}
	left := core.MustNewHashSketch(cfg)
	right := core.MustNewHashSketch(cfg)
	for v := uint64(0); v < 200; v++ {
		left.Update(v%97, 1)
		right.Update(v%31, int64(1+v%4))
	}
	return &Payload{Agg: AggCount, Domain: 1 << 12, LeftEpoch: 200, RightEpoch: 200, Left: left, Right: right}
}

func TestPayloadRoundTrip(t *testing.T) {
	p := testPayload(t)
	blob, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePayload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Agg != p.Agg || got.Domain != p.Domain || got.LeftEpoch != p.LeftEpoch || got.RightEpoch != p.RightEpoch {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, p)
	}
	lw, _ := p.Left.MarshalBinary()
	lg, _ := got.Left.MarshalBinary()
	rw, _ := p.Right.MarshalBinary()
	rg, _ := got.Right.MarshalBinary()
	if string(lw) != string(lg) || string(rw) != string(rg) {
		t.Fatal("sketches did not survive the round trip bit-identically")
	}
}

func TestPayloadDecodeRejectsGarbage(t *testing.T) {
	blob, err := EncodePayload(testPayload(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"short", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "magic"},
		{"bad version", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:8], 99); return b }, "version"},
		{"bad agg", func(b []byte) []byte { b[8] = 7; return b }, "aggregate"},
		{"truncated blob", func(b []byte) []byte { return b[:len(b)-5] }, ""},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xAB) }, "trailing"},
		// A hostile length field declaring far more bytes than shipped
		// must be bounded before use, not trusted.
		{"length bomb", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[33:37], 1<<31)
			return b
		}, "remain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), blob...))
			_, err := DecodePayload(b)
			if err == nil {
				t.Fatal("DecodePayload accepted corrupted input")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestPayloadEncodeRejectsIncomplete(t *testing.T) {
	if _, err := EncodePayload(nil); err == nil {
		t.Fatal("EncodePayload(nil) succeeded")
	}
	p := testPayload(t)
	p.Right = nil
	if _, err := EncodePayload(p); err == nil {
		t.Fatal("EncodePayload without a right sketch succeeded")
	}
	p = testPayload(t)
	p.Agg = 9
	if _, err := EncodePayload(p); err == nil {
		t.Fatal("EncodePayload with an unknown aggregate code succeeded")
	}
}
