package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

func threeShards() Config {
	return Config{Shards: []Shard{
		{Name: "s0", Addr: "http://127.0.0.1:9101"},
		{Name: "s1", Addr: "http://127.0.0.1:9102"},
		{Name: "s2", Addr: "http://127.0.0.1:9103"},
	}}
}

func TestConfigValidate(t *testing.T) {
	if err := threeShards().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty", Config{}},
		{"no name", Config{Shards: []Shard{{Addr: "http://x:1"}}}},
		{"dup name", Config{Shards: []Shard{
			{Name: "a", Addr: "http://x:1"}, {Name: "a", Addr: "http://x:2"},
		}}},
		{"dup addr", Config{Shards: []Shard{
			{Name: "a", Addr: "http://x:1"}, {Name: "b", Addr: "http://x:1/"},
		}}},
		{"relative addr", Config{Shards: []Shard{{Name: "a", Addr: "x:1"}}}},
		{"bad scheme", Config{Shards: []Shard{{Name: "a", Addr: "tcp://x:1"}}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ring.json")
	body := `{"shards":[{"name":"s0","addr":"http://127.0.0.1:9101"},{"name":"s1","addr":"http://127.0.0.1:9102"}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Shards) != 2 || cfg.Shards[1].Name != "s1" {
		t.Fatalf("loaded %+v", cfg)
	}
	// Unknown fields fail loudly: a typo must not silently shrink the ring.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"shard":[{"name":"s0","addr":"http://x:1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("LoadConfig accepted a config with an unknown top-level key")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadConfig accepted a missing file")
	}
}

// TestRouteDeterministicAndPartitioning: routing is a pure function of
// (tenant, stream, value) — every process computes the same placement —
// and spreads a value domain over every shard (no starved shard).
func TestRouteDeterministicAndPartitioning(t *testing.T) {
	cfg := threeShards()
	hits := make([]int, len(cfg.Shards))
	for v := uint64(0); v < 3000; v++ {
		si := cfg.Route("default", "F", v)
		if again := cfg.Route("default", "F", v); again != si {
			t.Fatalf("Route not deterministic for value %d: %d then %d", v, si, again)
		}
		if si < 0 || si >= len(cfg.Shards) {
			t.Fatalf("Route out of range: %d", si)
		}
		hits[si]++
	}
	for i, h := range hits {
		if h == 0 {
			t.Fatalf("shard %d received no values out of 3000", i)
		}
	}
	// Tenant and stream both separate the placement keyspace.
	diff := 0
	for v := uint64(0); v < 100; v++ {
		if cfg.Route("a", "F", v) != cfg.Route("b", "F", v) {
			diff++
		}
		if cfg.Route("a", "F", v) != cfg.Route("a", "G", v) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("tenant/stream do not participate in routing")
	}
	// Length-prefixing: ("ab","c") and ("a","bc") must not be forced to
	// collide by concatenation.
	collide := true
	for v := uint64(0); v < 100; v++ {
		if cfg.Route("ab", "c", v) != cfg.Route("a", "bc", v) {
			collide = false
			break
		}
	}
	if collide {
		t.Fatal("routing concatenates names without length prefixes")
	}
}
