// Package window extends the sketch machinery to sliding-window join
// aggregates: COUNT(F_W ⋈ G_W) where each stream is restricted to its
// most recent elements. The paper handles landmark (whole-stream)
// queries; windows are the natural deployment variant (cf. Datar et al.,
// SODA 2002, cited as [12]) and fall out of sketch linearity: the window
// is tiled into buckets of consecutive elements, each bucket gets its own
// hash sketch, expired buckets are dropped whole, and a query combines
// the live buckets into one sketch.
//
// The window is therefore honoured at bucket granularity: a query covers
// between W − W/B and W of the most recent elements (CoveredElements
// reports the exact number, and CoveredRange the exact update-index
// interval, so tests can compare against a ground-truth suffix).
package window

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/stream"
)

// Window summarizes the most recent elements of one stream.
type Window struct {
	cfg       core.Config
	bucketCap int64 // elements per bucket
	buckets   []*core.HashSketch
	cur       int   // index of the bucket receiving updates
	curCount  int64 // elements in the current bucket
	live      int   // number of full buckets currently retained
	total     int64 // elements ever seen
}

// New returns a window of windowLen elements tiled into numBuckets
// buckets (windowLen must divide evenly). Two windows built with equal
// arguments form a valid join pair.
func New(windowLen int64, numBuckets int, cfg core.Config) (*Window, error) {
	if numBuckets <= 0 {
		return nil, fmt.Errorf("window: numBuckets must be positive, got %d", numBuckets)
	}
	if windowLen <= 0 || windowLen%int64(numBuckets) != 0 {
		return nil, fmt.Errorf("window: windowLen %d must be a positive multiple of numBuckets %d", windowLen, numBuckets)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buckets := make([]*core.HashSketch, numBuckets)
	for i := range buckets {
		sk, err := core.NewHashSketch(cfg)
		if err != nil {
			return nil, err
		}
		buckets[i] = sk
	}
	return &Window{cfg: cfg, bucketCap: windowLen / int64(numBuckets), buckets: buckets}, nil
}

// MustNew is New for static configurations.
func MustNew(windowLen int64, numBuckets int, cfg core.Config) *Window {
	w, err := New(windowLen, numBuckets, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// Update folds one stream element into the current bucket, rotating (and
// expiring the oldest bucket) when the bucket fills. It implements
// stream.Sink. Deletes count as elements for window-position purposes,
// matching the "sequence of updates" window model.
func (w *Window) Update(value uint64, weight int64) {
	w.buckets[w.cur].Update(value, weight)
	w.curCount++
	w.total++
	if w.curCount == w.bucketCap {
		w.cur = (w.cur + 1) % len(w.buckets)
		w.buckets[w.cur].Reset() // expire the oldest bucket
		w.curCount = 0
		if w.live < len(w.buckets)-1 {
			w.live++
		}
	}
}

// UpdateBatch folds a whole batch, splitting it along bucket boundaries
// so each piece can use the sketch's batched update; rotation and expiry
// happen exactly where the sequential loop would trigger them. It
// implements stream.BatchSink.
func (w *Window) UpdateBatch(batch []stream.Update) {
	for len(batch) > 0 {
		n := w.bucketCap - w.curCount
		if n > int64(len(batch)) {
			n = int64(len(batch))
		}
		w.buckets[w.cur].UpdateBatch(batch[:n])
		w.curCount += n
		w.total += n
		if w.curCount == w.bucketCap {
			w.cur = (w.cur + 1) % len(w.buckets)
			w.buckets[w.cur].Reset() // expire the oldest bucket
			w.curCount = 0
			if w.live < len(w.buckets)-1 {
				w.live++
			}
		}
		batch = batch[n:]
	}
}

// Combined returns one sketch summarizing every retained element (the
// live full buckets plus the partial current bucket).
func (w *Window) Combined() *core.HashSketch {
	out := core.MustNewHashSketch(w.cfg)
	for _, b := range w.buckets {
		// Reset buckets are zero; combining them is a harmless no-op.
		if err := out.Combine(b); err != nil {
			panic(err) // unreachable: all buckets share cfg
		}
	}
	return out
}

// CoveredElements returns how many of the most recent elements the
// window currently summarizes.
func (w *Window) CoveredElements() int64 {
	return int64(w.live)*w.bucketCap + w.curCount
}

// CoveredRange returns the half-open update-index interval [from, to)
// the window summarizes, where indices count Update calls from 0.
func (w *Window) CoveredRange() (from, to int64) {
	return w.total - w.CoveredElements(), w.total
}

// Total returns the number of elements ever seen.
func (w *Window) Total() int64 { return w.total }

// WindowLen returns the configured window length in elements.
func (w *Window) WindowLen() int64 { return w.bucketCap * int64(len(w.buckets)) }

// Words returns the synopsis size in counter words across buckets.
func (w *Window) Words() int { return len(w.buckets) * w.cfg.Tables * w.cfg.Buckets }

// Compatible reports whether two windows can be joined.
func (w *Window) Compatible(o *Window) bool {
	return w.cfg == o.cfg && w.bucketCap == o.bucketCap && len(w.buckets) == len(o.buckets)
}

// EstimateJoin estimates COUNT(F_W ⋈ G_W) over [0, domain) from the two
// windows' combined sketches using the skimmed-sketch estimator.
func EstimateJoin(f, g *Window, domain uint64) (core.Estimate, error) {
	if !f.Compatible(g) {
		return core.Estimate{}, fmt.Errorf("window: windows are not a pair")
	}
	return core.EstimateJoin(f.Combined(), g.Combined(), domain, nil)
}
