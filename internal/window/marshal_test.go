package window

import (
	"testing"

	"skimsketch/internal/workload"
)

func TestWindowMarshalRoundTrip(t *testing.T) {
	c := cfg(5, 32, 9)
	w := MustNew(200, 4, c)
	z, _ := workload.NewZipf(256, 1.2, 3)
	updates := workload.MakeStream(z, 777) // mid-bucket position
	for _, u := range updates {
		w.Update(u.Value, u.Weight)
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Window
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !r.Compatible(w) || r.Total() != w.Total() || r.CoveredElements() != w.CoveredElements() {
		t.Fatal("window state must round-trip")
	}
	// Continue both windows identically: rotation must resume in sync.
	more := workload.MakeStream(z, 333)
	for _, u := range more {
		w.Update(u.Value, u.Weight)
		r.Update(u.Value, u.Weight)
	}
	cw, cr := w.Combined(), r.Combined()
	for j := 0; j < 5; j++ {
		for k := 0; k < 32; k++ {
			if cw.Counter(j, k) != cr.Counter(j, k) {
				t.Fatal("restored window diverged after further updates")
			}
		}
	}
	if w.CoveredElements() != r.CoveredElements() {
		t.Fatal("coverage diverged")
	}
}

func TestWindowUnmarshalErrors(t *testing.T) {
	w := MustNew(100, 4, cfg(3, 8, 1))
	w.Update(1, 1)
	blob, _ := w.MarshalBinary()
	var r Window
	if err := r.UnmarshalBinary(blob[:10]); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte{}, blob...)
	bad[0] = 'X'
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected magic error")
	}
	bad = append([]byte{}, blob...)
	bad[4] = 9
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected version error")
	}
	if err := r.UnmarshalBinary(append(blob, 0)); err == nil {
		t.Fatal("expected length error")
	}
	// Hostile bucket dimensions.
	bad = append([]byte{}, blob...)
	bad[44], bad[45], bad[46], bad[47] = 0, 0, 0, 8
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected hostile-dimension error")
	}
	// Inconsistent rotation state (cur out of range).
	bad = append([]byte{}, blob...)
	bad[20], bad[21], bad[22], bad[23] = 99, 0, 0, 0
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected rotation-state error")
	}
}
