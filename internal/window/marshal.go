package window

import (
	"encoding/binary"
	"fmt"

	"skimsketch/internal/core"
)

// Binary serialization: "SKWN" magic, u32 version, u64 bucketCap, u32
// numBuckets, u32 cur, u64 curCount, u32 live, u64 total, u32 tables,
// u32 buckets, u64 seed, then numBuckets length-prefixed bucket-sketch
// blobs. Restoring a window resumes rotation exactly where it left off.

var windowMagic = [4]byte{'S', 'K', 'W', 'N'}

const windowVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (w *Window) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, windowMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, windowVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.bucketCap))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.buckets)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.cur))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.curCount))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.live))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.total))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.cfg.Tables))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.cfg.Buckets))
	buf = binary.LittleEndian.AppendUint64(buf, w.cfg.Seed)
	for _, sk := range w.buckets {
		blob, err := sk.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver entirely.
func (w *Window) UnmarshalBinary(data []byte) error {
	const header = 60
	if len(data) < header {
		return fmt.Errorf("window: data truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != windowMagic {
		return fmt.Errorf("window: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != windowVersion {
		return fmt.Errorf("window: unsupported version %d", v)
	}
	bucketCap := int64(binary.LittleEndian.Uint64(data[8:16]))
	numBuckets := int(binary.LittleEndian.Uint32(data[16:20]))
	cur := int(binary.LittleEndian.Uint32(data[20:24]))
	curCount := int64(binary.LittleEndian.Uint64(data[24:32]))
	live := int(binary.LittleEndian.Uint32(data[32:36]))
	total := int64(binary.LittleEndian.Uint64(data[36:44]))
	cfg := core.Config{
		Tables:  int(binary.LittleEndian.Uint32(data[44:48])),
		Buckets: int(binary.LittleEndian.Uint32(data[48:52])),
		Seed:    binary.LittleEndian.Uint64(data[52:60]),
	}
	if numBuckets <= 0 || bucketCap <= 0 {
		return fmt.Errorf("window: invalid shape %dx%d", numBuckets, bucketCap)
	}
	// Validate total length before allocating bucket sketches.
	perBucket := 44 + 8*uint64(uint32(cfg.Tables))*uint64(uint32(cfg.Buckets))
	if want := 60 + uint64(numBuckets)*perBucket; uint64(len(data)) != want {
		return fmt.Errorf("window: data is %d bytes, want %d", len(data), want)
	}
	if cur < 0 || cur >= numBuckets || live < 0 || live >= numBuckets ||
		curCount < 0 || curCount >= bucketCap {
		return fmt.Errorf("window: inconsistent rotation state")
	}
	fresh, err := New(bucketCap*int64(numBuckets), numBuckets, cfg)
	if err != nil {
		return fmt.Errorf("window: unmarshal: %w", err)
	}
	fresh.cur, fresh.curCount, fresh.live, fresh.total = cur, curCount, live, total
	off := 60
	for i := range fresh.buckets {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if err := fresh.buckets[i].UnmarshalBinary(data[off : off+n]); err != nil {
			return fmt.Errorf("window: bucket %d: %w", i, err)
		}
		off += n
	}
	*w = *fresh
	return nil
}
