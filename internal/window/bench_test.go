package window

import (
	"testing"

	"skimsketch/internal/core"
)

func BenchmarkUpdate(b *testing.B) {
	w := MustNew(100000, 4, core.Config{Tables: 7, Buckets: 1024, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Update(uint64(i&16383), 1)
	}
}

func BenchmarkCombined(b *testing.B) {
	w := MustNew(100000, 8, core.Config{Tables: 7, Buckets: 1024, Seed: 1})
	for i := 0; i < 100000; i++ {
		w.Update(uint64(i&16383), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Combined()
	}
}
