package window

import (
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func cfg(d, b int, seed uint64) core.Config { return core.Config{Tables: d, Buckets: b, Seed: seed} }

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 0, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected error for zero buckets")
	}
	if _, err := New(0, 4, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected error for zero window")
	}
	if _, err := New(10, 4, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected error for non-divisible window")
	}
	if _, err := New(100, 4, cfg(0, 8, 1)); err == nil {
		t.Fatal("expected error for bad sketch config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 0, cfg(1, 1, 1))
}

func TestCoverageAccounting(t *testing.T) {
	w := MustNew(100, 4, cfg(3, 16, 1)) // 25 elements per bucket
	if w.WindowLen() != 100 || w.Words() != 4*3*16 {
		t.Fatalf("WindowLen=%d Words=%d", w.WindowLen(), w.Words())
	}
	for i := 0; i < 10; i++ {
		w.Update(uint64(i), 1)
	}
	if got := w.CoveredElements(); got != 10 {
		t.Fatalf("CoveredElements = %d, want 10", got)
	}
	from, to := w.CoveredRange()
	if from != 0 || to != 10 {
		t.Fatalf("CoveredRange = [%d,%d)", from, to)
	}
	// Fill far beyond the window: coverage must stay within
	// [W − W/B, W) = [75, 100).
	for i := 0; i < 1000; i++ {
		w.Update(uint64(i), 1)
	}
	cov := w.CoveredElements()
	if cov < 75 || cov >= 100 {
		t.Fatalf("coverage %d outside [75, 100)", cov)
	}
	if w.Total() != 1010 {
		t.Fatalf("Total = %d", w.Total())
	}
	from, to = w.CoveredRange()
	if to != 1010 || to-from != cov {
		t.Fatalf("CoveredRange = [%d,%d) with coverage %d", from, to, cov)
	}
}

// TestExpiryForgetsOldValues: a heavy value seen only before the window
// must vanish from the combined sketch.
func TestExpiryForgetsOldValues(t *testing.T) {
	w := MustNew(400, 4, cfg(5, 64, 7))
	for i := 0; i < 300; i++ {
		w.Update(42, 1) // heavy, early
	}
	for i := 0; i < 1000; i++ {
		w.Update(uint64(i%64)+100, 1) // light churn, pushes 42 out
	}
	if got := w.Combined().PointEstimate(42); got > 30 || got < -30 {
		t.Fatalf("expired value still estimates %d", got)
	}
}

// TestCombinedMatchesSuffix: the combined sketch must equal a fresh
// sketch fed exactly the covered suffix of the stream.
func TestCombinedMatchesSuffix(t *testing.T) {
	c := cfg(5, 64, 9)
	w := MustNew(200, 4, c)
	g, _ := workload.NewZipf(256, 1.1, 3)
	updates := workload.MakeStream(g, 1234)
	for _, u := range updates {
		w.Update(u.Value, u.Weight)
	}
	from, to := w.CoveredRange()
	ref := core.MustNewHashSketch(c)
	for _, u := range updates[from:to] {
		ref.Update(u.Value, u.Weight)
	}
	comb := w.Combined()
	for j := 0; j < 5; j++ {
		for k := 0; k < 64; k++ {
			if comb.Counter(j, k) != ref.Counter(j, k) {
				t.Fatal("combined sketch must equal sketching the covered suffix")
			}
		}
	}
}

func TestEstimateJoinIncompatible(t *testing.T) {
	a := MustNew(100, 4, cfg(3, 8, 1))
	b := MustNew(100, 4, cfg(3, 8, 2))
	if _, err := EstimateJoin(a, b, 16); err == nil {
		t.Fatal("expected pairing error")
	}
	c := MustNew(200, 4, cfg(3, 8, 1))
	if _, err := EstimateJoin(a, c, 16); err == nil {
		t.Fatal("expected pairing error for different window shapes")
	}
}

// TestWindowedJoinAccuracy: the windowed estimate must track the exact
// join of the covered suffixes.
func TestWindowedJoinAccuracy(t *testing.T) {
	const m = 1 << 10
	c := cfg(7, 256, 21)
	fw := MustNew(20000, 4, c)
	gw := MustNew(20000, 4, c)
	zf, _ := workload.NewZipf(m, 1.2, 5)
	zg, _ := workload.NewZipf(m, 1.2, 6)
	fu := workload.MakeStream(zf, 50000)
	gu := workload.MakeStream(zg, 50000)
	for _, u := range fu {
		fw.Update(u.Value, u.Weight)
	}
	for _, u := range gu {
		gw.Update(u.Value, u.Weight)
	}
	ff, ft := fw.CoveredRange()
	gf, gt := gw.CoveredRange()
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(fu[ff:ft], fv)
	stream.Apply(gu[gf:gt], gv)
	exact := float64(fv.InnerProduct(gv))

	est, err := EstimateJoin(fw, gw, m)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.SymmetricError(float64(est.Total), exact); e > 0.3 {
		t.Fatalf("windowed join error %.4f (est %d vs exact %.0f)", e, est.Total, exact)
	}
}

// TestDeletesInsideWindow: a delete inside the window cancels its insert.
func TestDeletesInsideWindow(t *testing.T) {
	w := MustNew(100, 4, cfg(5, 32, 3))
	w.Update(7, 1)
	w.Update(7, -1)
	if got := w.Combined().PointEstimate(7); got != 0 {
		t.Fatalf("estimate = %d, want 0", got)
	}
}
