package window_test

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/window"
)

// A sliding window forgets: after enough churn, an old value's estimate
// decays to (near) zero while a landmark sketch would keep it forever.
func ExampleWindow() {
	cfg := core.Config{Tables: 5, Buckets: 64, Seed: 3}
	w := window.MustNew(100, 4, cfg) // last ~100 elements, 4 buckets

	for i := 0; i < 50; i++ {
		w.Update(7, 1) // early burst
	}
	for i := 0; i < 300; i++ {
		w.Update(uint64(i%16)+20, 1) // later churn pushes the burst out
	}
	// 350 updates = 14 full buckets; the ring retains 3 full buckets
	// plus the (empty, just-rotated) current one: 75 elements covered.
	fmt.Println("covered elements:", w.CoveredElements())
	fmt.Println("estimate for expired value:", w.Combined().PointEstimate(7))
	// Output:
	// covered elements: 75
	// estimate for expired value: 0
}
