package hashfam

import (
	"math"
	"testing"
)

// Empirical moment tests for the four-wise family — the properties the
// AMS variance analysis actually consumes. Each expectation is taken
// over independently drawn families (the randomness of the
// construction), with tolerance a few standard errors of the mean.

// TestFourWiseTripleProductsVanish: E[ξ(a)ξ(b)ξ(c)] = 0 for distinct
// a, b, c (three-wise independence consequence).
func TestFourWiseTripleProductsVanish(t *testing.T) {
	s := NewSeedStream(321)
	const fams = 1600
	sum := 0.0
	for i := 0; i < fams; i++ {
		f := NewFourWise(s)
		sum += float64(f.Sign(2) * f.Sign(19) * f.Sign(501))
	}
	mean := sum / fams
	if sem := 1 / math.Sqrt(fams); math.Abs(mean) > 4*sem {
		t.Fatalf("mean triple product %.4f beyond 4 SEM %.4f", mean, 4/math.Sqrt(fams))
	}
}

// TestFourWiseQuadProductsVanish: E[ξ(a)ξ(b)ξ(c)ξ(d)] = 0 for four
// distinct values — the defining four-wise property that bounds the AMS
// estimator variance.
func TestFourWiseQuadProductsVanish(t *testing.T) {
	s := NewSeedStream(654)
	const fams = 1600
	sum := 0.0
	for i := 0; i < fams; i++ {
		f := NewFourWise(s)
		sum += float64(f.Sign(2) * f.Sign(19) * f.Sign(501) * f.Sign(90001))
	}
	mean := sum / fams
	if sem := 1 / math.Sqrt(fams); math.Abs(mean) > 4*sem {
		t.Fatalf("mean quad product %.4f beyond 4 SEM %.4f", mean, 4/math.Sqrt(fams))
	}
}

// TestFourWisePairedSquaresAreOne: E[ξ(a)²ξ(b)²] = 1 exactly — the
// surviving diagonal terms in the variance computation.
func TestFourWisePairedSquaresAreOne(t *testing.T) {
	s := NewSeedStream(987)
	for i := 0; i < 200; i++ {
		f := NewFourWise(s)
		if v := f.Sign(5) * f.Sign(5) * f.Sign(9) * f.Sign(9); v != 1 {
			t.Fatalf("ξ² products must be exactly 1, got %d", v)
		}
	}
}

// TestAMSVarianceBound: the empirical variance of a single atomic-sketch
// self-join estimate X² respects Var[X²] ≤ 2·F2² + o(·). Planted
// two-value frequency vector, analytic F2.
func TestAMSVarianceBound(t *testing.T) {
	s := NewSeedStream(1111)
	const f1, f2 = 30.0, 40.0
	const exactF2 = f1*f1 + f2*f2 // 2500
	const fams = 3000
	var sum, sumSq float64
	for i := 0; i < fams; i++ {
		f := NewFourWise(s)
		x := f1*float64(f.Sign(3)) + f2*float64(f.Sign(77))
		est := x * x
		sum += est
		sumSq += est * est
	}
	mean := sum / fams
	variance := sumSq/fams - mean*mean
	if math.Abs(mean-exactF2)/exactF2 > 0.05 {
		t.Fatalf("mean X² = %.1f, want ≈ %.0f (unbiasedness)", mean, exactF2)
	}
	// Var[X²] = 2(F2² − Σf⁴) = 2(2500² − (30⁴+40⁴)) here; just check the
	// ≤ 2·F2² bound with slack.
	if bound := 2 * exactF2 * exactF2; variance > bound*1.1 {
		t.Fatalf("variance %.0f exceeds AMS bound %.0f", variance, bound)
	}
}
