package hashfam

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestReduceRange(t *testing.T) {
	cases := []uint64{0, 1, MersennePrime - 1, MersennePrime, MersennePrime + 1, math.MaxUint64}
	for _, c := range cases {
		got := reduce(c)
		if got >= MersennePrime {
			t.Fatalf("reduce(%d) = %d out of field", c, got)
		}
		want := new(big.Int).Mod(new(big.Int).SetUint64(c), new(big.Int).SetUint64(MersennePrime)).Uint64()
		if got != want {
			t.Fatalf("reduce(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestMulmodAgainstBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime)
	f := func(a, b uint64) bool {
		a = reduce(a)
		b = reduce(b)
		got := mulmod(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddmodAgainstBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime)
	f := func(a, b uint64) bool {
		a = reduce(a)
		b = reduce(b)
		got := addmod(a, b)
		want := new(big.Int).Add(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedStreamDeterministic(t *testing.T) {
	a := NewSeedStream(42)
	b := NewSeedStream(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same master seed must yield identical sub-seed streams")
		}
	}
	c := NewSeedStream(43)
	same := 0
	a = NewSeedStream(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different master seeds collided %d/100 times", same)
	}
}

func TestPairwiseHashInField(t *testing.T) {
	s := NewSeedStream(1)
	h := NewPairwise(s)
	f := func(x uint64) bool { return h.Hash(x) < MersennePrime }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseBucketRange(t *testing.T) {
	s := NewSeedStream(7)
	h := NewPairwise(s)
	for _, nb := range []int{1, 2, 3, 64, 1021} {
		for x := uint64(0); x < 1000; x++ {
			b := h.Bucket(x, nb)
			if b < 0 || b >= nb {
				t.Fatalf("bucket %d out of [0,%d)", b, nb)
			}
		}
	}
}

// TestPairwiseBucketUniformity is a coarse chi-squared sanity check that
// the bucket hash spreads a contiguous domain evenly.
func TestPairwiseBucketUniformity(t *testing.T) {
	s := NewSeedStream(1234)
	h := NewPairwise(s)
	const nb = 64
	const n = 64 * 1000
	counts := make([]int, nb)
	for x := uint64(0); x < n; x++ {
		counts[h.Bucket(x, nb)]++
	}
	expected := float64(n) / nb
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom; the 0.9999 quantile is ~117. Be generous.
	if chi2 > 150 {
		t.Fatalf("chi-squared %.1f too large for uniform buckets", chi2)
	}
}

func TestFourWiseSignIsPlusMinusOne(t *testing.T) {
	s := NewSeedStream(9)
	f := NewFourWise(s)
	g := func(x uint64) bool {
		v := f.Sign(x)
		return v == 1 || v == -1
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFourWiseSignBalance checks E[ξ] ≈ 0 empirically across many
// independently drawn families (the AMS unbiasedness hinge).
func TestFourWiseSignBalance(t *testing.T) {
	s := NewSeedStream(99)
	const fams = 200
	const n = 500
	total := 0.0
	for i := 0; i < fams; i++ {
		f := NewFourWise(s)
		sum := int64(0)
		for x := uint64(0); x < n; x++ {
			sum += f.Sign(x)
		}
		total += float64(sum) / n
	}
	mean := total / fams
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean sign %.4f too far from 0", mean)
	}
}

// TestFourWisePairProductsBalance checks E[ξ(x)ξ(y)] ≈ 0 for x ≠ y, the
// pairwise consequence of four-wise independence that makes cross terms
// vanish in expectation.
func TestFourWisePairProductsBalance(t *testing.T) {
	s := NewSeedStream(123)
	const fams = 400
	sum := 0.0
	for i := 0; i < fams; i++ {
		f := NewFourWise(s)
		sum += float64(f.Sign(3) * f.Sign(77))
	}
	mean := sum / fams
	if math.Abs(mean) > 0.12 { // sd of the mean is 1/sqrt(400) = 0.05
		t.Fatalf("mean pair product %.4f too far from 0", mean)
	}
}

func TestFourWiseLeadingCoefficientNonZero(t *testing.T) {
	s := NewSeedStream(5)
	for i := 0; i < 100; i++ {
		f := NewFourWise(s)
		if f.a3 == 0 {
			t.Fatal("leading coefficient must be non-zero")
		}
	}
}

func TestPairwiseLeadingCoefficientNonZero(t *testing.T) {
	s := NewSeedStream(6)
	for i := 0; i < 100; i++ {
		h := NewPairwise(s)
		if h.a == 0 {
			t.Fatal("slope must be non-zero")
		}
	}
}

func BenchmarkFourWiseSign(b *testing.B) {
	s := NewSeedStream(1)
	f := NewFourWise(s)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += f.Sign(uint64(i))
	}
	_ = sink
}

func BenchmarkPairwiseBucket(b *testing.B) {
	s := NewSeedStream(1)
	h := NewPairwise(s)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Bucket(uint64(i), 1024)
	}
	_ = sink
}
