// Package hashfam provides the limited-independence hash families that
// underlie every sketch in this repository: pairwise-independent bucket
// hashes and four-wise independent ±1 variables, both realized as
// Carter–Wegman polynomials over the Mersenne prime field GF(2^61 − 1).
//
// The constructions follow Alon, Matias & Szegedy (STOC 1996) and the
// standard practical realization used by streaming implementations: a
// degree-k polynomial with random coefficients evaluated with 128-bit
// intermediate arithmetic gives a (k+1)-wise independent hash, and the low
// bit of a four-wise independent value in [0, p) is a four-wise
// independent ±1 variable up to an O(2^−61) bias.
package hashfam

import "math/bits"

// MersennePrime is p = 2^61 − 1, the field modulus for all families.
const MersennePrime uint64 = (1 << 61) - 1

// reduce folds an arbitrary 64-bit value into [0, p).
func reduce(x uint64) uint64 {
	x = (x & MersennePrime) + (x >> 61)
	if x >= MersennePrime {
		x -= MersennePrime
	}
	return x
}

// mulmod returns a·b mod p for a, b < p using a 128-bit product and
// Mersenne folding. With a, b < 2^61 the product is below 2^122, so the
// high word is below 2^58 and (hi<<3 | lo>>61) cannot overflow.
func mulmod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	r := (lo & MersennePrime) + (hi<<3 | lo>>61)
	if r >= MersennePrime {
		r -= MersennePrime
	}
	return r
}

// addmod returns a+b mod p for a, b < p.
func addmod(a, b uint64) uint64 {
	r := a + b
	if r >= MersennePrime {
		r -= MersennePrime
	}
	return r
}

// SeedStream derives an unbounded deterministic sequence of 64-bit seeds
// from one master seed using the splitmix64 generator. Every randomized
// component in the repository draws its coefficients from a SeedStream so
// that experiments are exactly reproducible from a single integer.
type SeedStream struct {
	state uint64
}

// NewSeedStream returns a stream seeded with the master seed.
func NewSeedStream(seed uint64) *SeedStream {
	return &SeedStream{state: seed}
}

// Next returns the next derived seed.
func (s *SeedStream) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextFieldElem draws a seed and reduces it into the field.
func (s *SeedStream) nextFieldElem() uint64 {
	return reduce(s.Next())
}

// nextNonZeroFieldElem draws a non-zero field element (needed for the
// leading coefficient of a polynomial so the degree is exact).
func (s *SeedStream) nextNonZeroFieldElem() uint64 {
	for {
		if v := s.nextFieldElem(); v != 0 {
			return v
		}
	}
}

// Pairwise is a pairwise-independent hash h(x) = (a·x + b) mod p with
// a ≠ 0. It is used to map stream elements to hash-table buckets.
type Pairwise struct {
	a, b uint64
}

// NewPairwise draws a pairwise hash from the stream.
func NewPairwise(s *SeedStream) Pairwise {
	return Pairwise{a: s.nextNonZeroFieldElem(), b: s.nextFieldElem()}
}

// Hash returns h(x) in [0, p).
func (h Pairwise) Hash(x uint64) uint64 {
	return addmod(mulmod(h.a, reduce(x)), h.b)
}

// Bucket maps x to one of nb buckets. The modulo bias is at most
// nb / 2^61 and is irrelevant at practical table sizes.
func (h Pairwise) Bucket(x uint64, nb int) int {
	return int(h.Hash(x) % uint64(nb))
}

// FourWise is a four-wise independent hash realized as a degree-3
// polynomial a3·x³ + a2·x² + a1·x + a0 mod p with a3 ≠ 0. Its Sign method
// yields the ξ ∈ {−1,+1} variables of AGMS atomic sketches.
type FourWise struct {
	a0, a1, a2, a3 uint64
}

// NewFourWise draws a four-wise hash from the stream.
func NewFourWise(s *SeedStream) FourWise {
	return FourWise{
		a0: s.nextFieldElem(),
		a1: s.nextFieldElem(),
		a2: s.nextFieldElem(),
		a3: s.nextNonZeroFieldElem(),
	}
}

// Hash evaluates the polynomial at x via Horner's rule, returning a value
// in [0, p).
func (f FourWise) Hash(x uint64) uint64 {
	xr := reduce(x)
	r := f.a3
	r = addmod(mulmod(r, xr), f.a2)
	r = addmod(mulmod(r, xr), f.a1)
	r = addmod(mulmod(r, xr), f.a0)
	return r
}

// Sign returns ξ(x) ∈ {−1, +1} from the low bit of the hash.
func (f FourWise) Sign(x uint64) int64 {
	return int64(f.Hash(x)&1)<<1 - 1
}
