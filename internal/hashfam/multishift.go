package hashfam

// MultiplyShift is Dietzfelbinger's multiply-shift scheme: for a table of
// 2^k buckets, h(x) = (a·x + b) >> (64 − k) with odd a, which is
// 2-universal (collision probability ≤ 2/2^k) at the cost of a single
// multiply — several times faster than the Mersenne-field polynomial.
// The skimmed-sketch analysis only needs pairwise independence of the
// bucket map, so MultiplyShift is a drop-in alternative to Pairwise for
// power-of-two tables; the default implementation keeps the polynomial
// family because it supports arbitrary table sizes and exact pairwise
// independence. Benchmarks in this package quantify the trade.
type MultiplyShift struct {
	a, b  uint64
	shift uint
}

// NewMultiplyShift draws a scheme for tables of 2^bits buckets.
// bits must be in [1, 63].
func NewMultiplyShift(s *SeedStream, bits int) MultiplyShift {
	if bits < 1 || bits > 63 {
		panic("hashfam: MultiplyShift bits must be in [1, 63]")
	}
	return MultiplyShift{
		a:     s.Next() | 1, // odd multiplier
		b:     s.Next(),
		shift: uint(64 - bits),
	}
}

// Bucket maps x to [0, 2^bits).
func (h MultiplyShift) Bucket(x uint64) int {
	return int((h.a*x + h.b) >> h.shift)
}

// Buckets returns the table size 2^bits.
func (h MultiplyShift) Buckets() int { return 1 << (64 - h.shift) }
