package hashfam

import "testing"

func TestMultiplyShiftRange(t *testing.T) {
	s := NewSeedStream(1)
	for _, bits := range []int{1, 4, 10, 20} {
		h := NewMultiplyShift(s, bits)
		if h.Buckets() != 1<<bits {
			t.Fatalf("Buckets = %d, want %d", h.Buckets(), 1<<bits)
		}
		for x := uint64(0); x < 10000; x++ {
			b := h.Bucket(x)
			if b < 0 || b >= 1<<bits {
				t.Fatalf("bits=%d: bucket %d out of range", bits, b)
			}
		}
	}
}

func TestMultiplyShiftPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiplyShift(NewSeedStream(1), 0)
}

func TestMultiplyShiftOddMultiplier(t *testing.T) {
	s := NewSeedStream(7)
	for i := 0; i < 100; i++ {
		h := NewMultiplyShift(s, 8)
		if h.a&1 == 0 {
			t.Fatal("multiplier must be odd")
		}
	}
}

func TestMultiplyShiftUniformity(t *testing.T) {
	s := NewSeedStream(99)
	h := NewMultiplyShift(s, 6) // 64 buckets
	const n = 64 * 1000
	counts := make([]int, 64)
	for x := uint64(0); x < n; x++ {
		counts[h.Bucket(x)]++
	}
	expected := float64(n) / 64
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 150 {
		t.Fatalf("chi-squared %.1f too large", chi2)
	}
}

// TestMultiplyShiftCollisionRate: empirical pairwise collision rate must
// respect the 2-universal bound 2/m.
func TestMultiplyShiftCollisionRate(t *testing.T) {
	s := NewSeedStream(5)
	const m = 256
	const pairs = 20000
	collisions := 0
	for i := 0; i < pairs; i++ {
		h := NewMultiplyShift(s, 8)
		if h.Bucket(uint64(2*i)) == h.Bucket(uint64(2*i+1)) {
			collisions++
		}
	}
	rate := float64(collisions) / pairs
	if rate > 2.0/m*1.5 {
		t.Fatalf("collision rate %.5f exceeds 2-universal bound %.5f", rate, 2.0/m)
	}
}

func BenchmarkMultiplyShiftBucket(b *testing.B) {
	h := NewMultiplyShift(NewSeedStream(1), 10)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Bucket(uint64(i))
	}
	_ = sink
}
