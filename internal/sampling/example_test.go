package sampling_test

import (
	"fmt"

	"skimsketch/internal/sampling"
)

// Reservoir samples cannot survive deletions — the contrast with
// sketches the paper draws (Section 1, property 2).
func ExampleJoinEstimate() {
	f, _ := sampling.NewReservoir(100, 1)
	g, _ := sampling.NewReservoir(100, 2)
	f.Update(7, 1)
	f.Update(7, -1) // a delete poisons the sample
	g.Update(7, 1)
	_, err := sampling.JoinEstimate(f, g)
	fmt.Println(err)
	// Output: sampling: reservoir samples cannot process deletes
}
