// Package sampling implements the random-sampling baseline the paper
// dismisses (Sections 1–2): reservoir samples (Vitter, 1985) over each
// stream and a cross-product join-size estimator built from them. It
// exists so the paper's two claims about sampling are checkable in this
// repository:
//
//  1. sampling cannot handle delete operations — a deletion may refer to
//     an element that was never sampled, so the estimator refuses streams
//     containing deletes rather than silently degrading;
//  2. sampling is far less accurate than sketches for join sizes at equal
//     space, which the experiment harness demonstrates.
package sampling

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrDeletesUnsupported reports that a stream contained delete operations,
// which invalidate reservoir samples.
var ErrDeletesUnsupported = errors.New("sampling: reservoir samples cannot process deletes")

// Reservoir maintains a uniform random sample of k elements from an
// insert-only stream using Vitter's algorithm R. A weight-w update counts
// as w repetitions of the element.
type Reservoir struct {
	k         int
	n         int64 // elements seen (after weight expansion)
	sample    []uint64
	rng       *rand.Rand
	sawDelete bool
}

// NewReservoir returns a reservoir holding at most k elements, drawing
// its replacement decisions from a fresh source seeded with seed.
func NewReservoir(k int, seed int64) (*Reservoir, error) {
	return NewReservoirRand(k, rand.New(rand.NewSource(seed)))
}

// NewReservoirRand is NewReservoir drawing from an injected source, so
// a caller can share one seeded *rand.Rand across several reservoirs
// and other consumers deterministically.
func NewReservoirRand(k int, rng *rand.Rand) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sampling: reservoir size must be positive, got %d", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("sampling: rng must be non-nil")
	}
	return &Reservoir{k: k, sample: make([]uint64, 0, k), rng: rng}, nil
}

// Update implements stream.Sink. Deletes (negative weights) poison the
// reservoir: subsequent estimates return ErrDeletesUnsupported.
func (r *Reservoir) Update(value uint64, weight int64) {
	if weight < 0 {
		r.sawDelete = true
		return
	}
	for i := int64(0); i < weight; i++ {
		r.n++
		if len(r.sample) < r.k {
			r.sample = append(r.sample, value)
			continue
		}
		if j := r.rng.Int63n(r.n); j < int64(r.k) {
			r.sample[j] = value
		}
	}
}

// Size returns the number of sampled elements (≤ k).
func (r *Reservoir) Size() int { return len(r.sample) }

// SeenCount returns the number of stream elements observed.
func (r *Reservoir) SeenCount() int64 { return r.n }

// Words returns the synopsis size in words for space accounting.
func (r *Reservoir) Words() int { return r.k }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []uint64 {
	out := make([]uint64, len(r.sample))
	copy(out, r.sample)
	return out
}

// JoinEstimate estimates COUNT(F ⋈ G) from the two reservoirs by scaling
// the number of matching sample pairs: the expected number of matches
// between independent uniform samples is |S_F|·|S_G|·J/(n_F·n_G).
func JoinEstimate(f, g *Reservoir) (int64, error) {
	if f.sawDelete || g.sawDelete {
		return 0, ErrDeletesUnsupported
	}
	if f.Size() == 0 || g.Size() == 0 {
		return 0, nil
	}
	counts := make(map[uint64]int64, f.Size())
	for _, v := range f.sample {
		counts[v]++
	}
	var matches int64
	for _, v := range g.sample {
		matches += counts[v]
	}
	scale := float64(f.n) * float64(g.n) / (float64(f.Size()) * float64(g.Size()))
	return int64(float64(matches) * scale), nil
}

// SelfJoinEstimate estimates F2 = Σ f_v² from the reservoir by scaling the
// number of matching pairs within the sample (with replacement semantics
// on the diagonal: a pair (i, i) always matches, so it is excluded and the
// unbiased pair count over distinct indices is scaled by n²/(k(k−1)),
// then the exact diagonal n is added back).
func (r *Reservoir) SelfJoinEstimate() (int64, error) {
	if r.sawDelete {
		return 0, ErrDeletesUnsupported
	}
	k := int64(r.Size())
	if k < 2 {
		return r.n, nil
	}
	counts := make(map[uint64]int64, r.Size())
	for _, v := range r.sample {
		counts[v]++
	}
	var pairs int64 // ordered matching pairs over distinct sample indices
	for _, c := range counts {
		pairs += c * (c - 1)
	}
	scale := float64(r.n) * float64(r.n-1) / (float64(k) * float64(k-1))
	return int64(float64(pairs)*scale) + r.n, nil
}
