package sampling

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"testing"
)

func hashSample(sample []uint64) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range sample {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func feed(r *Reservoir) {
	for i := 0; i < 5000; i++ {
		r.Update(uint64(i%257), 1+int64(i%3))
	}
}

// TestGoldenReservoir pins the byte-exact reservoir contents for a
// fixed seed and input stream.
func TestGoldenReservoir(t *testing.T) {
	r, err := NewReservoir(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	feed(r)
	const want = "0554c73669df29697905491ae21094adf3099867e1cab1a71f7c14c188366707"
	if got := hashSample(r.Sample()); got != want {
		t.Errorf("reservoir digest = %s, want %s", got, want)
	}
}

// TestSeedAndRandConstructorsAgree checks that NewReservoir(k, seed)
// is exactly NewReservoirRand(k, rand.New(rand.NewSource(seed))).
func TestSeedAndRandConstructorsAgree(t *testing.T) {
	a, err := NewReservoir(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReservoirRand(64, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	feed(a)
	feed(b)
	if hashSample(a.Sample()) != hashSample(b.Sample()) {
		t.Error("NewReservoir(seed) and NewReservoirRand diverge")
	}
}

func TestNewReservoirRandRejectsNil(t *testing.T) {
	if _, err := NewReservoirRand(8, nil); err == nil {
		t.Error("NewReservoirRand accepted a nil rng")
	}
	if _, err := NewReservoirRand(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("NewReservoirRand accepted k=0")
	}
}
