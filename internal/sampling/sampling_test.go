package sampling

import (
	"testing"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestNewReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestReservoirFillsThenSamples(t *testing.T) {
	r, err := NewReservoir(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		r.Update(i, 1)
	}
	if r.Size() != 5 || r.SeenCount() != 5 {
		t.Fatalf("Size=%d Seen=%d", r.Size(), r.SeenCount())
	}
	for i := uint64(0); i < 1000; i++ {
		r.Update(i, 1)
	}
	if r.Size() != 10 {
		t.Fatalf("Size=%d, want 10", r.Size())
	}
	if r.SeenCount() != 1005 {
		t.Fatalf("Seen=%d", r.SeenCount())
	}
	if r.Words() != 10 {
		t.Fatalf("Words=%d", r.Words())
	}
}

func TestWeightedUpdateExpands(t *testing.T) {
	r, _ := NewReservoir(100, 1)
	r.Update(7, 5)
	if r.SeenCount() != 5 || r.Size() != 5 {
		t.Fatalf("weighted insert must expand: seen=%d size=%d", r.SeenCount(), r.Size())
	}
}

func TestSampleIsCopy(t *testing.T) {
	r, _ := NewReservoir(4, 1)
	r.Update(1, 1)
	s := r.Sample()
	s[0] = 999
	if r.Sample()[0] == 999 {
		t.Fatal("Sample must return a copy")
	}
}

// TestReservoirUniformity: every stream position should be retained with
// probability k/n.
func TestReservoirUniformity(t *testing.T) {
	const k, n, trials = 10, 100, 2000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r, _ := NewReservoir(k, int64(trial))
		for i := uint64(0); i < n; i++ {
			r.Update(i, 1)
		}
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for v, c := range counts {
		if float64(c) < want*0.6 || float64(c) > want*1.4 {
			t.Fatalf("position %d retained %d times, want ≈ %.0f", v, c, want)
		}
	}
}

func TestDeletesPoisonEstimates(t *testing.T) {
	f, _ := NewReservoir(10, 1)
	g, _ := NewReservoir(10, 2)
	f.Update(1, 1)
	f.Update(1, -1)
	g.Update(1, 1)
	if _, err := JoinEstimate(f, g); err != ErrDeletesUnsupported {
		t.Fatalf("err = %v, want ErrDeletesUnsupported", err)
	}
	if _, err := f.SelfJoinEstimate(); err != ErrDeletesUnsupported {
		t.Fatalf("err = %v, want ErrDeletesUnsupported", err)
	}
}

func TestJoinEstimateEmpty(t *testing.T) {
	f, _ := NewReservoir(10, 1)
	g, _ := NewReservoir(10, 2)
	est, err := JoinEstimate(f, g)
	if err != nil || est != 0 {
		t.Fatalf("est=%d err=%v", est, err)
	}
}

// TestJoinEstimateFullSample: when the reservoir holds the whole stream
// the estimator must be exact.
func TestJoinEstimateFullSample(t *testing.T) {
	f, _ := NewReservoir(1000, 1)
	g, _ := NewReservoir(1000, 2)
	fs := []stream.Update{stream.Insert(1), stream.Insert(1), stream.Insert(2)}
	gs := []stream.Update{stream.Insert(1), stream.Insert(2), stream.Insert(2)}
	stream.Apply(fs, f)
	stream.Apply(gs, g)
	est, err := JoinEstimate(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if want := stream.ExactJoinSize(fs, gs); est != want {
		t.Fatalf("est=%d want=%d", est, want)
	}
}

func TestSelfJoinEstimateFullSample(t *testing.T) {
	r, _ := NewReservoir(1000, 3)
	fv := stream.NewFreqVector()
	for _, v := range []uint64{1, 1, 1, 2, 2, 5} {
		r.Update(v, 1)
		fv.Update(v, 1)
	}
	est, err := r.SelfJoinEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if want := fv.SelfJoinSize(); est != want {
		t.Fatalf("est=%d want=%d", est, want)
	}
}

func TestSelfJoinTinySample(t *testing.T) {
	r, _ := NewReservoir(5, 1)
	r.Update(3, 1)
	est, err := r.SelfJoinEstimate()
	if err != nil || est != 1 {
		t.Fatalf("est=%d err=%v", est, err)
	}
}

// TestSamplingAccuracyBallpark: with a large sample on a skewed join the
// estimate should land within an order of magnitude; the experiments show
// it loses badly to sketches at equal space, not that it is useless.
func TestSamplingAccuracyBallpark(t *testing.T) {
	const m, n = 1 << 10, 50000
	gf, _ := workload.NewZipf(m, 1.0, 51)
	gg, _ := workload.NewZipf(m, 1.0, 52)
	fs := workload.MakeStream(gf, n)
	gs := workload.MakeStream(gg, n)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	f, _ := NewReservoir(4000, 1)
	g, _ := NewReservoir(4000, 2)
	stream.Apply(fs, fv, f)
	stream.Apply(gs, gv, g)
	exact := float64(fv.InnerProduct(gv))
	est, err := JoinEstimate(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.SymmetricError(float64(est), exact); e > 3 {
		t.Fatalf("sampling error %.2f beyond ballpark (est %d vs exact %.0f)", e, est, exact)
	}
}
