package distributed_test

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/distributed"
)

// Multi-site aggregation: sketches built independently at two sites
// merge into a synopsis of the union stream (sketch linearity).
func ExampleMerge() {
	cfg := core.Config{Tables: 5, Buckets: 64, Seed: 1}
	siteA := core.MustNewHashSketch(cfg)
	siteB := core.MustNewHashSketch(cfg)
	siteA.Update(7, 3)
	siteB.Update(7, 4)

	merged, err := distributed.Merge(siteA, siteB)
	if err != nil {
		panic(err)
	}
	fmt.Println(merged.PointEstimate(7))
	// Output: 7
}
