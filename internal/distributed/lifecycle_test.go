package distributed

import (
	"errors"
	"sync"
	"testing"
)

// TestConcurrentCloseClose is the race regression for the lifecycle
// fields: Close from many goroutines must neither race nor double-close
// the shard channels, and every call must return only after the drain.
// Run with -race.
func TestConcurrentCloseClose(t *testing.T) {
	in, err := NewIngestor(4, cfg(3, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		in.Update(uint64(i%64), 1)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in.Close()
			// Close has returned, so the drain is complete and Merged
			// must succeed from this goroutine too.
			if _, err := in.Merged(); err != nil {
				t.Errorf("Merged after Close: %v", err)
			}
		}()
	}
	wg.Wait()
	m, err := in.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if m.NetCount() != 1000 {
		t.Fatalf("merged net count = %d, want 1000", m.NetCount())
	}
}

// TestConcurrentCloseMerged races Close against Merged: Merged must
// either error (drain not complete) or return a fully merged sketch —
// never a torn read. Run with -race.
func TestConcurrentCloseMerged(t *testing.T) {
	for round := 0; round < 20; round++ {
		in, err := NewIngestor(3, cfg(3, 16, uint64(round+1)))
		if err != nil {
			t.Fatal(err)
		}
		const n = 500
		for i := 0; i < n; i++ {
			in.Update(uint64(i%64), 1)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			in.Close()
		}()
		go func() {
			defer wg.Done()
			if m, err := in.Merged(); err == nil && m.NetCount() != n {
				t.Errorf("racing Merged returned a torn sketch: net %d, want %d", m.NetCount(), n)
			}
		}()
		wg.Wait()
		m, err := in.Merged()
		if err != nil {
			t.Fatal(err)
		}
		if m.NetCount() != n {
			t.Fatalf("merged net count = %d, want %d", m.NetCount(), n)
		}
	}
}

// TestUpdateAfterClosePanics pins the guarded-misuse contract: Update on
// a closed Ingestor panics with ErrUpdateAfterClose — a failure that
// names the misuse — rather than a raw "send on closed channel".
func TestUpdateAfterClosePanics(t *testing.T) {
	in, err := NewIngestor(2, cfg(3, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	in.Update(1, 1)
	in.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Update after Close did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrUpdateAfterClose) {
			t.Fatalf("panic value = %v, want ErrUpdateAfterClose", r)
		}
	}()
	in.Update(2, 1)
}
