package distributed

import (
	"strings"
	"testing"

	"skimsketch/internal/core"
)

// These tests pin the Merge error contract the merger tier leans on:
// zero sketches and mismatched configurations must ERROR — never return
// a silently corrupt synopsis — and a failed Merge must leave every
// input bit-identical to before the call.

func TestMergeZeroSketchesErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("Merge() of nothing must error, not fabricate a synopsis")
	}
}

func mustBlob(t *testing.T, sk *core.HashSketch) string {
	t.Helper()
	b, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMergeMismatchedConfigErrors(t *testing.T) {
	base := cfg(5, 64, 3)
	mk := func(c core.Config, vals ...uint64) *core.HashSketch {
		sk := core.MustNewHashSketch(c)
		for _, v := range vals {
			sk.Update(v, 1)
		}
		return sk
	}
	cases := []struct {
		name  string
		other core.Config
	}{
		{"different tables", core.Config{Tables: 7, Buckets: 64, Seed: 3}},
		{"different buckets", core.Config{Tables: 5, Buckets: 32, Seed: 3}},
		{"different seed", core.Config{Tables: 5, Buckets: 64, Seed: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b, c := mk(base, 1, 2), mk(tc.other, 3), mk(base, 4)
			aBlob, bBlob, cBlob := mustBlob(t, a), mustBlob(t, b), mustBlob(t, c)
			out, err := Merge(a, b, c)
			if err == nil {
				t.Fatal("mismatched config must error")
			}
			if out != nil {
				t.Fatal("a failed Merge must not return a sketch")
			}
			// The error names the offending input's position (1-based).
			if !strings.Contains(err.Error(), "sketch 2 of 3") {
				t.Fatalf("error does not name the mismatched input: %v", err)
			}
			// No input was modified — the merge happened in a private clone.
			if mustBlob(t, a) != aBlob || mustBlob(t, b) != bBlob || mustBlob(t, c) != cBlob {
				t.Fatal("Merge modified an input on the error path")
			}
		})
	}
}

// TestMergeLastMismatchDiscardsPartial: when the incompatible sketch is
// the LAST input, earlier inputs have already been folded into the
// private clone; the error must still discard everything.
func TestMergeLastMismatchDiscardsPartial(t *testing.T) {
	base := cfg(5, 64, 3)
	a := core.MustNewHashSketch(base)
	b := core.MustNewHashSketch(base)
	a.Update(1, 1)
	b.Update(2, 1)
	odd := core.MustNewHashSketch(core.Config{Tables: 3, Buckets: 64, Seed: 3})
	aBlob, bBlob := mustBlob(t, a), mustBlob(t, b)
	out, err := Merge(a, b, odd)
	if err == nil || out != nil {
		t.Fatalf("Merge = (%v, %v), want (nil, error)", out, err)
	}
	if !strings.Contains(err.Error(), "sketch 3 of 3") {
		t.Fatalf("error does not name the mismatched input: %v", err)
	}
	if mustBlob(t, a) != aBlob || mustBlob(t, b) != bBlob {
		t.Fatal("Merge modified an input on the late-error path")
	}
}

// TestMergeSingleAndLinear: Merge of one sketch is a private clone, and
// Merge of k partitions is bit-identical to one sketch over the
// concatenated stream — the linearity the cluster answers rest on.
func TestMergeSingleAndLinear(t *testing.T) {
	c := cfg(5, 64, 9)
	whole := core.MustNewHashSketch(c)
	parts := make([]*core.HashSketch, 3)
	for i := range parts {
		parts[i] = core.MustNewHashSketch(c)
	}
	for v := uint64(0); v < 300; v++ {
		w := int64(1 + v%5)
		whole.Update(v, w)
		parts[v%3].Update(v, w)
	}

	one, err := Merge(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if one == parts[0] {
		t.Fatal("Merge of one sketch must clone, not alias")
	}
	if mustBlob(t, one) != mustBlob(t, parts[0]) {
		t.Fatal("clone differs from its source")
	}

	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if mustBlob(t, merged) != mustBlob(t, whole) {
		t.Fatal("merged partitions differ from the serially maintained sketch")
	}
}
