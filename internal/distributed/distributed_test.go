package distributed

import (
	"sync"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func cfg(d, b int, seed uint64) core.Config { return core.Config{Tables: d, Buckets: b, Seed: seed} }

func TestNewIngestorValidation(t *testing.T) {
	if _, err := NewIngestor(0, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected error for zero workers")
	}
	if _, err := NewIngestor(2, cfg(0, 8, 1)); err == nil {
		t.Fatal("expected error for bad config")
	}
}

func TestMergedRequiresClose(t *testing.T) {
	in, err := NewIngestor(2, cfg(3, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Merged(); err == nil {
		t.Fatal("expected error before Close")
	}
	in.Close()
	in.Close() // idempotent
	if _, err := in.Merged(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelIngestEqualsSerial: the merged shard sketch must be
// bit-identical to a serial sketch of the same stream.
func TestParallelIngestEqualsSerial(t *testing.T) {
	c := cfg(5, 128, 7)
	g, _ := workload.NewZipf(1024, 1.1, 3)
	updates := workload.MakeStream(g, 50000)
	updates = workload.WithDeletes(updates, 0.2, 9)

	serial := core.MustNewHashSketch(c)
	stream.Apply(updates, serial)

	in, err := NewIngestor(4, c)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent producers.
	var wg sync.WaitGroup
	const producers = 3
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(updates); i += producers {
				in.Update(updates[i].Value, updates[i].Weight)
			}
		}(p)
	}
	wg.Wait()
	in.Close()
	merged, err := in.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if in.Workers() != 4 {
		t.Fatalf("Workers = %d", in.Workers())
	}
	for j := 0; j < 5; j++ {
		for k := 0; k < 128; k++ {
			if merged.Counter(j, k) != serial.Counter(j, k) {
				t.Fatal("parallel-ingested sketch must equal the serial one")
			}
		}
	}
	if merged.NetCount() != serial.NetCount() || merged.GrossCount() != serial.GrossCount() {
		t.Fatal("counts must merge too")
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("expected error for empty merge")
	}
	a := core.MustNewHashSketch(cfg(3, 8, 1))
	b := core.MustNewHashSketch(cfg(3, 8, 2))
	if _, err := Merge(a, b); err == nil {
		t.Fatal("expected incompatibility error")
	}
}

func TestMergeDoesNotMutateInputs(t *testing.T) {
	c := cfg(3, 8, 1)
	a := core.MustNewHashSketch(c)
	b := core.MustNewHashSketch(c)
	a.Update(1, 1)
	b.Update(2, 1)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if a.NetCount() != 1 || b.NetCount() != 1 {
		t.Fatal("inputs must be untouched")
	}
	if m.NetCount() != 2 {
		t.Fatalf("merged net = %d", m.NetCount())
	}
}

// TestMultiSiteJoin: sketches from independent "sites" merge into valid
// join inputs — the distributed-monitoring deployment of the paper's
// introduction.
func TestMultiSiteJoin(t *testing.T) {
	c := cfg(7, 256, 11)
	const m = 1 << 10
	// Site A and site B each observe part of stream F; one site observes G.
	fA := core.MustNewHashSketch(c)
	fB := core.MustNewHashSketch(c)
	gS := core.MustNewHashSketch(c)
	fAll := core.MustNewHashSketch(c)

	zf, _ := workload.NewZipf(m, 1.2, 5)
	zg, _ := workload.NewZipf(m, 1.2, 6)
	for i, u := range workload.MakeStream(zf, 20000) {
		if i%2 == 0 {
			fA.Update(u.Value, u.Weight)
		} else {
			fB.Update(u.Value, u.Weight)
		}
		fAll.Update(u.Value, u.Weight)
	}
	for _, u := range workload.MakeStream(zg, 20000) {
		gS.Update(u.Value, u.Weight)
	}

	merged, err := Merge(fA, fB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimateJoin(fAll, gS, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.EstimateJoin(merged, gS, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total {
		t.Fatalf("multi-site estimate %d differs from centralized %d", got.Total, want.Total)
	}
}
