package distributed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"skimsketch/internal/core"
)

// TestParseRetryAfter covers both RFC 9110 Retry-After forms. The
// HTTP-date cases are the regression: a sender that only understands
// delay-seconds turns a date hint into "retry immediately".
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"zero seconds", "0", 0},
		{"delay seconds", "2", 2 * time.Second},
		{"negative seconds", "-5", 0},
		{"seconds capped", "3600", MaxRetryAfter},
		{"http date future", now.Add(3 * time.Second).Format(http.TimeFormat), 3 * time.Second},
		{"http date past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http date capped", now.Add(time.Hour).Format(http.TimeFormat), MaxRetryAfter},
		{"rfc850 date", now.Add(4 * time.Second).Format("Monday, 02-Jan-06 15:04:05 MST"), 4 * time.Second},
		{"ansi c date", now.Add(5 * time.Second).Format(time.ANSIC), 5 * time.Second},
		{"garbage", "soon", 0},
		{"float seconds", "1.5", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ParseRetryAfter(tc.v, now); got != tc.want {
				t.Fatalf("ParseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

// TestDelayAfterFloorsByHint pins the composition of the exponential
// policy with a server hint: the hint is a floor (never a ceiling), it
// sees through wrapping, it is capped at MaxRetryAfter, and failures
// without a hint keep the pure Backoff delay.
func TestDelayAfterFloorsByHint(t *testing.T) {
	b := Backoff{
		Base:   time.Millisecond,
		Max:    8 * time.Millisecond,
		Factor: 2,
		Jitter: 0, // deterministic: delayAfter == max(Delay, hint)
		Rand:   rand.New(rand.NewSource(1)),
	}
	cases := []struct {
		name    string
		attempt int
		err     error
		want    time.Duration
	}{
		{"no hint", 0, errors.New("boom"), time.Millisecond},
		{"hint above backoff", 0, &RetryAfterError{After: 20 * time.Millisecond}, 20 * time.Millisecond},
		{"hint below backoff", 3, &RetryAfterError{After: 2 * time.Millisecond}, 8 * time.Millisecond},
		{"zero hint", 1, &RetryAfterError{After: 0}, 2 * time.Millisecond},
		{"wrapped hint", 0,
			fmt.Errorf("ship: %w", &RetryAfterError{After: 15 * time.Millisecond}),
			15 * time.Millisecond},
		{"hint capped", 0, &RetryAfterError{After: time.Hour}, MaxRetryAfter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := b.delayAfter(tc.attempt, tc.err); got != tc.want {
				t.Fatalf("delayAfter(%d, %v) = %v, want %v", tc.attempt, tc.err, got, tc.want)
			}
		})
	}
}

// TestRetryAfterErrorUnwrap: errors.Is must see the underlying failure
// through the hint wrapper, so callers can still classify it.
func TestRetryAfterErrorUnwrap(t *testing.T) {
	boom := errors.New("boom")
	err := fmt.Errorf("pull shard 2: %w", &RetryAfterError{After: time.Second, Err: boom})
	if !errors.Is(err, boom) {
		t.Fatal("errors.Is lost the wrapped failure")
	}
	var ra *RetryAfterError
	if !errors.As(err, &ra) || ra.After != time.Second {
		t.Fatalf("errors.As did not recover the hint: %v", err)
	}
}

// TestShipSketchHonorsRetryAfterFloor drives ShipSketch against a send
// that rejects with a Retry-After hint well above the (microsecond)
// backoff: the delivery must not happen before the hint elapses. This is
// the merger-pulls-shard contract — a shard shedding load with 429 +
// Retry-After actually holds the retrying peer back.
func TestShipSketchHonorsRetryAfterFloor(t *testing.T) {
	sk := core.MustNewHashSketch(cfg(3, 8, 1))
	sk.Update(7, 1)
	const hint = 50 * time.Millisecond
	var rejected time.Time
	var delivered time.Time
	err := ShipSketch(context.Background(), fastBackoff(5), sk, func(_ context.Context, blob []byte) error {
		if rejected.IsZero() {
			rejected = time.Now()
			return &RetryAfterError{After: hint, Err: errors.New("shard overloaded")}
		}
		delivered = time.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gap := delivered.Sub(rejected); gap < hint {
		t.Fatalf("retried after %v; Retry-After hint of %v was not honored as a floor", gap, hint)
	}
}
