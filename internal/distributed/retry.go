package distributed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"skimsketch/internal/core"
)

// Backoff is a jittered-exponential retry policy for shipping sketches
// between sites. Remote-site merge (the SF-sketch-style deployment in
// the package comment) rides on flaky links: a shard sketch that fails
// to reach the merger is simply retried — sketches are idempotent state,
// not deltas, so re-sending the same blob is always safe.
//
// The zero value is usable: 100ms base delay, doubling, capped at 5s,
// half of every delay jittered, retrying until the context is done.
type Backoff struct {
	// Base is the delay before the first retry. <= 0 defaults to 100ms.
	Base time.Duration
	// Max caps the (pre-jitter) delay. <= 0 defaults to 5s.
	Max time.Duration
	// Factor multiplies the delay after each failure. < 1 defaults to 2.
	Factor float64
	// Jitter is the fraction of each delay that is randomized: the
	// actual sleep is delay·(1-Jitter) + delay·Jitter·U[0,1). Outside
	// [0,1] it defaults to 0.5. Jitter decorrelates retry storms from
	// many sites hitting one merger.
	Jitter float64
	// Attempts bounds the total number of tries. <= 0 means unbounded —
	// retry until the context is canceled.
	Attempts int
	// Rand supplies the jitter randomness; nil uses the (thread-safe)
	// global math/rand source. Tests inject a seeded source. A non-nil
	// *rand.Rand is not goroutine-safe, so share one Backoff across
	// goroutines only when Rand is nil.
	Rand *rand.Rand
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 100 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 5 * time.Second
	}
	return b.Max
}

func (b Backoff) factor() float64 {
	if b.Factor < 1 {
		return 2
	}
	return b.Factor
}

func (b Backoff) jitter() float64 {
	if b.Jitter < 0 || b.Jitter > 1 {
		return 0.5
	}
	return b.Jitter
}

func (b Backoff) float64() float64 {
	if b.Rand != nil {
		return b.Rand.Float64()
	}
	return rand.Float64()
}

// Delay returns the sleep before retry number attempt (0-based): the
// exponentially grown, capped, jittered delay. Exposed so tests can pin
// the bounds.
func (b Backoff) Delay(attempt int) time.Duration {
	d := float64(b.base())
	f := b.factor()
	for i := 0; i < attempt; i++ {
		d *= f
		if d >= float64(b.max()) {
			break
		}
	}
	if m := float64(b.max()); d > m {
		d = m
	}
	j := b.jitter()
	d = d*(1-j) + d*j*b.float64()
	return time.Duration(d)
}

// MaxRetryAfter caps how long a server's Retry-After hint can stall a
// retry loop: a misconfigured (or adversarial) hint of an hour must not
// wedge a shipper whose own backoff tops out in seconds.
const MaxRetryAfter = 30 * time.Second

// RetryAfterError marks a retryable failure that carries the server's
// Retry-After hint (a 429 or 503 with the header). Backoff.Retry floors
// its next delay by the hint, so a crowd of sites told "retry after 2s"
// waits at least that long — while the exponential growth and jitter
// still apply on top, decorrelating the retry storm. Wrap the underlying
// failure in Err; errors.Is/As see through it.
type RetryAfterError struct {
	// After is the server's requested pause before the next attempt.
	After time.Duration
	// Err is the underlying failure, if any.
	Err error
}

func (e *RetryAfterError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("retryable after %v: %v", e.After, e.Err)
	}
	return fmt.Sprintf("retryable after %v", e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// ParseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds ("120") or an HTTP-date ("Fri, 08 Aug 2026 17:00:00
// GMT", evaluated against now). Unparseable, missing, or already-past
// hints yield 0 (pure Backoff pacing); the result is capped at
// MaxRetryAfter. Senders that only understood delay-seconds silently
// turned a date hint into an immediate hammer-retry, which is exactly
// backwards under overload.
func ParseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		d = time.Duration(secs) * time.Second
	} else if when, err := http.ParseTime(v); err == nil {
		d = when.Sub(now)
	} else {
		return 0
	}
	if d < 0 {
		return 0
	}
	if d > MaxRetryAfter {
		d = MaxRetryAfter
	}
	return d
}

// delayAfter computes the sleep before the next try given the failure of
// retry number attempt (0-based): the policy's jittered-exponential
// delay, floored by the failure's Retry-After hint (capped at
// MaxRetryAfter) when it carries one.
func (b Backoff) delayAfter(attempt int, last error) time.Duration {
	d := b.Delay(attempt)
	var ra *RetryAfterError
	if errors.As(last, &ra) {
		hint := ra.After
		if hint > MaxRetryAfter {
			hint = MaxRetryAfter
		}
		if hint > d {
			d = hint
		}
	}
	return d
}

// Retry runs f until it succeeds, the attempt budget is spent, or ctx is
// done, sleeping the policy's jittered-exponential delay between tries.
// f receives ctx and should abort promptly when it is canceled. A
// failure wrapping RetryAfterError floors the next delay by the server's
// hint. The returned error is nil on success; on a canceled context it
// wraps both the context error and f's last error (either matches
// errors.Is).
func (b Backoff) Retry(ctx context.Context, f func(context.Context) error) error {
	if f == nil {
		return errors.New("distributed: Retry requires a function")
	}
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return retryErr(attempt, err, last)
		}
		if last = f(ctx); last == nil {
			return nil
		}
		if b.Attempts > 0 && attempt+1 >= b.Attempts {
			return fmt.Errorf("distributed: giving up after %d attempts: %w", attempt+1, last)
		}
		t := time.NewTimer(b.delayAfter(attempt, last))
		select {
		case <-ctx.Done():
			t.Stop()
			return retryErr(attempt+1, ctx.Err(), last)
		case <-t.C:
		}
	}
}

// retryErr reports a context-terminated retry, preserving the last
// attempt error (if any) for errors.Is/As.
func retryErr(attempts int, ctxErr, last error) error {
	if last == nil {
		return fmt.Errorf("distributed: retry canceled before first attempt: %w", ctxErr)
	}
	return fmt.Errorf("distributed: retry canceled after %d attempts: %w (last error: %w)", attempts, ctxErr, last)
}

// ShipSketch marshals one sketch and delivers the blob via send under
// the retry policy. send is typically an HTTP POST to a remote merger;
// it must treat re-delivery as idempotent (it is: the blob is absolute
// sketch state, and the merger overwrites the site's slot).
func ShipSketch(ctx context.Context, b Backoff, sk *core.HashSketch, send func(context.Context, []byte) error) error {
	if sk == nil {
		return errors.New("distributed: nothing to ship")
	}
	if send == nil {
		return errors.New("distributed: ShipSketch requires a send function")
	}
	blob, err := sk.MarshalBinary()
	if err != nil {
		return fmt.Errorf("distributed: marshal for shipping: %w", err)
	}
	return b.Retry(ctx, func(ctx context.Context) error {
		return send(ctx, blob)
	})
}

// ShipMerged merges a closed Ingestor's shard sketches and ships the
// result — the whole remote-site contribution in one blob. The ingestor
// must be Closed first.
func ShipMerged(ctx context.Context, b Backoff, in *Ingestor, send func(context.Context, []byte) error) error {
	merged, err := in.Merged()
	if err != nil {
		return err
	}
	return ShipSketch(ctx, b, merged, send)
}
