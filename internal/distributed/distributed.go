// Package distributed provides parallel and multi-site ingestion on top
// of sketch linearity: updates are fanned out to per-worker shard
// sketches over channels, and shards (or sketches shipped from remote
// sites) are merged into one synopsis at query time. Because every
// sketch in this repository is a linear projection of the frequency
// vector, the merged sketch is bit-identical to one maintained serially
// over the concatenated stream — the property the tests pin down.
package distributed

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"skimsketch/internal/core"
	"skimsketch/internal/stream"
)

// Ingestor ingests one stream with several workers, each owning a shard
// sketch, so Update never contends on a shared counter array.
type Ingestor struct {
	cfg    core.Config
	shards []*core.HashSketch
	chans  []chan stream.Update
	wg     sync.WaitGroup
	next   atomic.Uint64

	// Lifecycle: closeOnce makes Close exactly-once (concurrent Close
	// calls block until the first finishes, so none returns before the
	// shards are drained); closing flips at the start of Close and gates
	// Update's misuse panic; closed flips after the drain and gates
	// Merged. Both are atomics so Close/Merged and Close/Close from
	// different goroutines are race-free.
	closeOnce sync.Once
	closing   atomic.Bool
	closed    atomic.Bool
}

// NewIngestor starts `workers` shard goroutines for sketches with the
// given configuration.
func NewIngestor(workers int, cfg core.Config) (*Ingestor, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("distributed: workers must be positive, got %d", workers)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Ingestor{cfg: cfg}
	for i := 0; i < workers; i++ {
		sk, err := core.NewHashSketch(cfg)
		if err != nil {
			return nil, err
		}
		ch := make(chan stream.Update, 1024)
		in.shards = append(in.shards, sk)
		in.chans = append(in.chans, ch)
		in.wg.Add(1)
		go func(sk *core.HashSketch, ch <-chan stream.Update) {
			defer in.wg.Done()
			for u := range ch {
				sk.Update(u.Value, u.Weight)
			}
		}(sk, ch)
	}
	return in, nil
}

// ErrUpdateAfterClose is the panic value of Update on a closed
// Ingestor, so the failure names the misuse instead of surfacing as a
// raw "send on closed channel" from deep inside the package.
var ErrUpdateAfterClose = errors.New("distributed: Update on a closed Ingestor")

// Update routes one element to a shard (round-robin). It implements
// stream.Sink and is safe for concurrent use with other Update calls.
// Calling Update after (or concurrently with) Close is a misuse and
// panics with ErrUpdateAfterClose; callers must sequence their last
// Update before Close. The guard is best-effort under a concurrent
// Close — an unlucky interleaving can still surface as a send on a
// closed channel — but a sequenced Update-after-Close always gets the
// named panic.
func (in *Ingestor) Update(value uint64, weight int64) {
	if in.closing.Load() {
		panic(ErrUpdateAfterClose)
	}
	i := in.next.Add(1) % uint64(len(in.chans))
	in.chans[i] <- stream.Update{Value: value, Weight: weight}
}

// Close stops the workers and waits for every queued update to be
// folded. It is idempotent and safe to call from several goroutines:
// every call returns only after the drain is complete.
func (in *Ingestor) Close() {
	in.closeOnce.Do(func() {
		in.closing.Store(true)
		for _, ch := range in.chans {
			close(ch)
		}
		in.wg.Wait()
		in.closed.Store(true)
	})
}

// Merged combines the shard sketches into one synopsis. The ingestor
// must be Closed first so no updates are in flight; a Merged racing a
// Close cleanly errors until the drain completes.
func (in *Ingestor) Merged() (*core.HashSketch, error) {
	if !in.closed.Load() {
		return nil, fmt.Errorf("distributed: Close the ingestor before merging")
	}
	return Merge(in.shards...)
}

// Workers returns the shard count.
func (in *Ingestor) Workers() int { return len(in.shards) }

// Merge combines compatible sketches (local shards or sketches shipped
// from remote sites) into a fresh synopsis of the union of their
// streams. The inputs are never modified, even on error: merging happens
// in a private clone, so a mismatched sketch (different tables, buckets
// or seed) yields an error naming its position and leaves every input —
// and any synopsis the caller might have derived from an earlier call —
// untouched. Zero sketches is an error, not an empty synopsis: the
// caller cannot know a usable Config for one.
func Merge(sketches ...*core.HashSketch) (*core.HashSketch, error) {
	if len(sketches) == 0 {
		return nil, fmt.Errorf("distributed: nothing to merge")
	}
	out := sketches[0].Clone()
	for i, sk := range sketches[1:] {
		if err := out.Combine(sk); err != nil {
			return nil, fmt.Errorf("distributed: merge sketch %d of %d: %w", i+2, len(sketches), err)
		}
	}
	return out, nil
}
