package distributed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"skimsketch/internal/core"
	"skimsketch/internal/workload"
)

// fastBackoff keeps test retries in the microsecond range.
func fastBackoff(attempts int) Backoff {
	return Backoff{
		Base:     10 * time.Microsecond,
		Max:      100 * time.Microsecond,
		Attempts: attempts,
		Rand:     rand.New(rand.NewSource(1)),
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := fastBackoff(10).Retry(context.Background(), func(context.Context) error {
		calls++
		if calls < 4 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := fastBackoff(3).Retry(context.Background(), func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want exactly the attempt budget", calls)
	}
}

func TestRetryHonorsContextCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	// Unbounded attempts with a long delay: only cancellation can end it.
	b := Backoff{Base: time.Hour, Rand: rand.New(rand.NewSource(1))}
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- b.Retry(ctx, func(context.Context) error {
			calls++
			close(started)
			return boom
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, must preserve the last attempt error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not return after cancel")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (canceled during the first backoff sleep)", calls)
	}
}

func TestRetryCanceledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fastBackoff(5).Retry(ctx, func(context.Context) error {
		t.Error("function ran under a canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRetryNilFunction(t *testing.T) {
	if err := fastBackoff(1).Retry(context.Background(), nil); err == nil {
		t.Fatal("expected error for nil function")
	}
}

// TestDelayBounds pins the jittered-exponential envelope: every delay
// lies in [delay·(1-Jitter), delay) for the capped exponential delay,
// and delays never exceed Max.
func TestDelayBounds(t *testing.T) {
	b := Backoff{
		Base:   time.Millisecond,
		Max:    16 * time.Millisecond,
		Factor: 2,
		Jitter: 0.5,
		Rand:   rand.New(rand.NewSource(7)),
	}
	for attempt := 0; attempt < 12; attempt++ {
		raw := float64(time.Millisecond)
		for i := 0; i < attempt; i++ {
			raw *= 2
			if raw >= float64(b.Max) {
				break
			}
		}
		if raw > float64(b.Max) {
			raw = float64(b.Max)
		}
		for trial := 0; trial < 100; trial++ {
			d := float64(b.Delay(attempt))
			if d < raw*0.5 || d > raw {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]",
					attempt, time.Duration(d), time.Duration(raw*0.5), time.Duration(raw))
			}
		}
	}
}

func TestDelayDefaultsAreSane(t *testing.T) {
	var b Backoff // zero value
	if d := b.Delay(0); d <= 0 || d > 100*time.Millisecond {
		t.Fatalf("zero-value first delay = %v", d)
	}
	if d := b.Delay(30); d > 5*time.Second {
		t.Fatalf("zero-value delay exceeds the 5s cap: %v", d)
	}
}

func TestShipMergedDeliversAfterFailures(t *testing.T) {
	c := cfg(5, 64, 3)
	in, err := NewIngestor(3, c)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := workload.NewZipf(512, 1.1, 4)
	updates := workload.MakeStream(g, 5000)
	for _, u := range updates {
		in.Update(u.Value, u.Weight)
	}
	in.Close()
	want, err := in.Merged()
	if err != nil {
		t.Fatal(err)
	}

	var delivered []byte
	fails := 2
	err = ShipMerged(context.Background(), fastBackoff(10), in, func(_ context.Context, blob []byte) error {
		if fails > 0 {
			fails--
			return errors.New("link down")
		}
		delivered = append([]byte{}, blob...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var got core.HashSketch
	if err := got.UnmarshalBinary(delivered); err != nil {
		t.Fatal(err)
	}
	// The shipped blob must reconstruct the merged shard sketch exactly.
	wantBlob, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gotBlob, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBlob) != string(wantBlob) {
		t.Fatal("shipped sketch differs from the merged shards")
	}
}

func TestShipMergedRequiresClose(t *testing.T) {
	in, err := NewIngestor(2, cfg(3, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	err = ShipMerged(context.Background(), fastBackoff(1), in, func(context.Context, []byte) error { return nil })
	if err == nil {
		t.Fatal("expected error shipping an open ingestor")
	}
}

func TestShipSketchValidation(t *testing.T) {
	sk := core.MustNewHashSketch(cfg(3, 8, 1))
	if err := ShipSketch(context.Background(), Backoff{}, nil, func(context.Context, []byte) error { return nil }); err == nil {
		t.Fatal("expected error for nil sketch")
	}
	if err := ShipSketch(context.Background(), Backoff{}, sk, nil); err == nil {
		t.Fatal("expected error for nil send")
	}
}
