package workload

import (
	"errors"
	"strconv"
	"testing"
)

// drawN pulls n values from g.
func drawN(t *testing.T, g Generator, n int) []uint64 {
	t.Helper()
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
		if out[i] >= g.Domain() {
			t.Fatalf("value %d outside domain %d", out[i], g.Domain())
		}
	}
	return out
}

// TestParseShapeEquivalence: every spec reproduces the generator it
// names, value for value.
func TestParseShapeEquivalence(t *testing.T) {
	const domain, seed = 4096, 99
	cases := []struct {
		spec string
		want func() Generator
	}{
		{"uniform", func() Generator { return NewUniform(domain, seed) }},
		{"zipf", func() Generator { z, _ := NewZipf(domain, 1.0, seed); return z }},
		{"zipf:0.8", func() Generator { z, _ := NewZipf(domain, 0.8, seed); return z }},
		{"zipf:1.0+shift:100", func() Generator {
			z, _ := NewZipf(domain, 1.0, seed)
			return NewShifted(z, 100)
		}},
		{"uniform+shift:7", func() Generator { return NewShifted(NewUniform(domain, seed), 7) }},
	}
	for _, tc := range cases {
		g, err := ParseShape(tc.spec, domain, seed)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		got := drawN(t, g, 500)
		want := drawN(t, tc.want(), 500)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: value %d differs: got %d want %d", tc.spec, i, got[i], want[i])
			}
		}
	}
}

// TestParseShapeDeterministic: the same (spec, domain, seed) triple
// yields the same stream across independent parses.
func TestParseShapeDeterministic(t *testing.T) {
	a, err := ParseShape("zipf:1.0", 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseShape("zipf:1.0", 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	av, bv := drawN(t, a, 1000), drawN(t, b, 1000)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("streams diverge at %d: %d vs %d", i, av[i], bv[i])
		}
	}
}

// TestParseShapeErrors: malformed specs are rejected with an error, not
// a fallback shape that would silently change the workload.
func TestParseShapeErrors(t *testing.T) {
	bad := []string{
		"", "gauss", "zipf:", "zipf:x", "zipf:-1",
		"uniform+stretch:3", "uniform+shift:", "uniform+shift:-2",
	}
	for _, spec := range bad {
		if g, err := ParseShape(spec, 64, 1); err == nil {
			t.Errorf("spec %q accepted as %T", spec, g)
		}
	}
	if _, err := ParseShape("uniform", 0, 1); err == nil {
		t.Error("zero domain accepted")
	}
}

// TestParseShapeErrorsUnwrap: the numeric-parse failures wrap the
// strconv error with %w, so callers can errors.As to *strconv.NumError
// and distinguish a typo from a range problem.
func TestParseShapeErrorsUnwrap(t *testing.T) {
	for _, spec := range []string{"zipf:x", "uniform+shift:x"} {
		_, err := ParseShape(spec, 64, 1)
		if err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
		var ne *strconv.NumError
		if !errors.As(err, &ne) {
			t.Errorf("spec %q: error %q does not unwrap to *strconv.NumError", spec, err)
		}
	}
}
