package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"testing"

	"skimsketch/internal/stream"
)

// hashStream digests a stream's exact bytes (value, weight pairs in
// order, little-endian), so two streams hash equal iff they are
// byte-identical.
func hashStream(updates []stream.Update) string {
	h := sha256.New()
	var buf [16]byte
	for _, u := range updates {
		binary.LittleEndian.PutUint64(buf[:8], u.Value)
		binary.LittleEndian.PutUint64(buf[8:], uint64(u.Weight))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenStreams pins the byte-exact output of every generator for
// a fixed seed. These digests are a compatibility contract: experiment
// results, documentation numbers and cross-process reproductions all
// assume a seed names one exact stream. If a change here is
// intentional, it is a breaking change to that contract — update the
// digests and say so loudly in the commit message.
func TestGoldenStreams(t *testing.T) {
	zipfBase := func(seed int64) Generator {
		g, err := NewZipf(1024, 1.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := []struct {
		name string
		gen  func() []stream.Update
		want string
	}{
		{
			name: "zipf",
			gen:  func() []stream.Update { return MakeStream(zipfBase(42), 2000) },
			want: "17db92788839ac914a3de9bea62132067da4ce36d2d98e7c2801621192111f54",
		},
		{
			name: "uniform",
			gen:  func() []stream.Update { return MakeStream(NewUniform(1<<16, 7), 2000) },
			want: "9325c7554a498c5977b77140549616fdd6e6e8ee5e2457dbd38763e037343c3f",
		},
		{
			name: "mixture",
			gen: func() []stream.Update {
				return MakeStream(NewMixture(NewUniform(4096, 11), []uint64{1, 2, 3}, 0.3, 13), 2000)
			},
			want: "c076629aa45ded6a0de1fa5283d325d311c7027cae98673c6d060abe057d33a2",
		},
		{
			name: "shifted_permuted",
			gen: func() []stream.Update {
				return MakeStream(NewPermuted(NewShifted(zipfBase(42), 100), 17), 2000)
			},
			want: "e2f99b12c78393ae0189fd890aef5965d63c64d763359b49e83cdf3bd21779b2",
		},
		{
			name: "census",
			gen: func() []stream.Update {
				wage, overtime := CensusPair(3000, 3)
				return append(wage, overtime...)
			},
			want: "96d586c1b7e3141a07170015c52509b092cebed06d5cab871dd9430f46b3b0b4",
		},
		{
			name: "with_deletes",
			gen: func() []stream.Update {
				return WithDeletes(MakeStream(zipfBase(42), 1000), 0.2, 19)
			},
			want: "6b6adc3d83741866129bd240c392fd302cab6783a4c2778a15186b6a930a165c",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := hashStream(tc.gen())
			if got != tc.want {
				t.Errorf("stream digest = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestSeedAndRandConstructorsAgree checks the refactoring contract:
// the seed-taking constructors are exactly the ...Rand constructors
// over rand.New(rand.NewSource(seed)).
func TestSeedAndRandConstructorsAgree(t *testing.T) {
	seeded, err := NewZipf(512, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := NewZipfRand(512, 1.0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	a := hashStream(MakeStream(seeded, 500))
	b := hashStream(MakeStream(injected, 500))
	if a != b {
		t.Errorf("NewZipf(seed) and NewZipfRand(rand.New(seed)) diverge: %s vs %s", a, b)
	}

	u1 := MakeStream(NewUniform(1<<20, 9), 500)
	u2 := MakeStream(NewUniformRand(1<<20, rand.New(rand.NewSource(9))), 500)
	if hashStream(u1) != hashStream(u2) {
		t.Error("NewUniform(seed) and NewUniformRand diverge")
	}

	w1, o1 := CensusPair(500, 21)
	w2, o2 := CensusPairRand(500, rand.New(rand.NewSource(21)))
	if hashStream(w1) != hashStream(w2) || hashStream(o1) != hashStream(o2) {
		t.Error("CensusPair(seed) and CensusPairRand diverge")
	}

	m1 := MakeStream(NewMixture(NewUniform(64, 1), []uint64{5}, 0.5, 2), 300)
	m2 := MakeStream(NewMixtureRand(NewUniformRand(64, rand.New(rand.NewSource(1))), []uint64{5}, 0.5, rand.New(rand.NewSource(2))), 300)
	if hashStream(m1) != hashStream(m2) {
		t.Error("NewMixture(seed) and NewMixtureRand diverge")
	}

	d1 := WithDeletes(u1, 0.3, 23)
	d2 := WithDeletesRand(u2, 0.3, rand.New(rand.NewSource(23)))
	if hashStream(d1) != hashStream(d2) {
		t.Error("WithDeletes(seed) and WithDeletesRand diverge")
	}

	p1 := MakeStream(NewPermuted(NewUniform(256, 4), 6), 300)
	p2 := MakeStream(NewPermutedRand(NewUniformRand(256, rand.New(rand.NewSource(4))), rand.New(rand.NewSource(6))), 300)
	if hashStream(p1) != hashStream(p2) {
		t.Error("NewPermuted(seed) and NewPermutedRand diverge")
	}
}

// TestSharedSourceComposes checks that two generators can share one
// injected source: draws interleave deterministically instead of each
// generator owning a private stream.
func TestSharedSourceComposes(t *testing.T) {
	run := func() string {
		rng := rand.New(rand.NewSource(77))
		a := NewUniformRand(128, rng)
		b := NewUniformRand(128, rng)
		out := make([]stream.Update, 0, 200)
		for i := 0; i < 100; i++ {
			out = append(out, stream.Insert(a.Next()), stream.Insert(b.Next()))
		}
		return hashStream(out)
	}
	if run() != run() {
		t.Error("shared-source composition is not reproducible")
	}
}
