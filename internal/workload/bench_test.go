package workload

import "testing"

func BenchmarkZipfNext(b *testing.B) {
	g, err := NewZipf(1<<18, 1.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkZipfBuildCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewZipf(1<<16, 1.0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCensusPair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CensusPair(10000, 1)
	}
}
