// Package workload generates the evaluation data streams of the paper's
// Section 5: Zipfian streams, right-shifted Zipfian streams (the knob that
// controls join size), uniform streams, and a census-like synthetic data
// set substituting for the proprietary Current Population Survey file (see
// DESIGN.md for the substitution rationale).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"skimsketch/internal/stream"
)

// Generator produces a sequence of domain values.
type Generator interface {
	// Next returns the next value.
	Next() uint64
	// Domain returns the domain size m; values are in [0, m).
	Domain() uint64
}

// Every generator in this package draws randomness exclusively from an
// injected *rand.Rand: the ...Rand constructors take the source
// directly (compose generators over one source, or share a source with
// the caller's other draws), and the seed-taking constructors are
// shorthand for a private rand.New(rand.NewSource(seed)). Nothing here
// touches the global math/rand source or the clock — the detseed
// analyzer (cmd/sketchlint) enforces this, and the golden-stream tests
// pin the exact byte output per seed.

// rngFromSeed builds the package's canonical source for a seed.
func rngFromSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// MakeStream draws n insert updates from g.
func MakeStream(g Generator, n int) []stream.Update {
	out := make([]stream.Update, n)
	for i := range out {
		out[i] = stream.Insert(g.Next())
	}
	return out
}

// Zipf draws values from a Zipfian distribution over [0, m):
// P(i) ∝ 1/(i+1)^z. Unlike math/rand's Zipf it supports any z ≥ 0
// (the paper needs z = 1.0 exactly) via an explicit CDF table and binary
// search.
type Zipf struct {
	cdf    []float64
	domain uint64
	rng    *rand.Rand
}

// NewZipf builds the CDF table for a Zipf(z) distribution over [0, m),
// drawing from a fresh source seeded with seed.
func NewZipf(m uint64, z float64, seed int64) (*Zipf, error) {
	return NewZipfRand(m, z, rngFromSeed(seed))
}

// NewZipfRand is NewZipf drawing from an injected source.
func NewZipfRand(m uint64, z float64, rng *rand.Rand) (*Zipf, error) {
	if rng == nil {
		return nil, fmt.Errorf("workload: rng must be non-nil")
	}
	if m == 0 {
		return nil, fmt.Errorf("workload: domain must be positive")
	}
	if z < 0 {
		return nil, fmt.Errorf("workload: zipf parameter %v must be non-negative", z)
	}
	cdf := make([]float64, m)
	total := 0.0
	for i := uint64(0); i < m; i++ {
		total += math.Pow(float64(i+1), -z)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, domain: m, rng: rng}, nil
}

// Next draws one value.
func (g *Zipf) Next() uint64 {
	u := g.rng.Float64()
	return uint64(sort.SearchFloat64s(g.cdf, u))
}

// Domain returns the domain size.
func (g *Zipf) Domain() uint64 { return g.domain }

// Shifted wraps a generator and adds a right shift modulo the domain,
// reproducing the paper's "right-shifted Zipfian" construction: the
// frequency of value v+s in the shifted stream equals the frequency of v
// in the base stream. Shift 0 makes a join with the base stream a
// self-join; increasing the shift shrinks the join size.
type Shifted struct {
	base  Generator
	shift uint64
}

// NewShifted wraps base with a right shift of s.
func NewShifted(base Generator, s uint64) *Shifted {
	return &Shifted{base: base, shift: s % base.Domain()}
}

// Next draws one shifted value.
func (g *Shifted) Next() uint64 {
	return (g.base.Next() + g.shift) % g.base.Domain()
}

// Domain returns the domain size.
func (g *Shifted) Domain() uint64 { return g.base.Domain() }

// Uniform draws values uniformly from [0, m).
type Uniform struct {
	domain uint64
	rng    *rand.Rand
}

// NewUniform returns a uniform generator over [0, m), drawing from a
// fresh source seeded with seed.
func NewUniform(m uint64, seed int64) *Uniform {
	return NewUniformRand(m, rngFromSeed(seed))
}

// NewUniformRand is NewUniform drawing from an injected source.
func NewUniformRand(m uint64, rng *rand.Rand) *Uniform {
	return &Uniform{domain: m, rng: rng}
}

// Next draws one value.
func (g *Uniform) Next() uint64 { return uint64(g.rng.Int63n(int64(g.domain))) }

// Domain returns the domain size.
func (g *Uniform) Domain() uint64 { return g.domain }

// Permuted applies a fixed random bijection of the domain to another
// generator's output, scattering the (rank-ordered) dense values across
// the domain. Sketch estimators are invariant to this, which experiments
// verify; dyadic skimming timings are sensitive to it.
type Permuted struct {
	base Generator
	perm []uint64
}

// NewPermuted builds the bijection with the given seed.
func NewPermuted(base Generator, seed int64) *Permuted {
	return NewPermutedRand(base, rngFromSeed(seed))
}

// NewPermutedRand builds the bijection by consuming one shuffle from
// the injected source.
func NewPermutedRand(base Generator, rng *rand.Rand) *Permuted {
	m := base.Domain()
	perm := make([]uint64, m)
	for i := range perm {
		perm[i] = uint64(i)
	}
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return &Permuted{base: base, perm: perm}
}

// Next draws one permuted value.
func (g *Permuted) Next() uint64 { return g.perm[g.base.Next()] }

// Domain returns the domain size.
func (g *Permuted) Domain() uint64 { return g.base.Domain() }

// WithDeletes interleaves delete noise into an insert stream: each
// original insert is kept, and with probability frac a copy of a previous
// value is inserted and later deleted again, exercising the general-update
// path without changing the net frequency vector.
func WithDeletes(updates []stream.Update, frac float64, seed int64) []stream.Update {
	return WithDeletesRand(updates, frac, rngFromSeed(seed))
}

// WithDeletesRand is WithDeletes drawing from an injected source.
func WithDeletesRand(updates []stream.Update, frac float64, rng *rand.Rand) []stream.Update {
	out := make([]stream.Update, 0, len(updates)+int(2*frac*float64(len(updates))))
	var pendingDeletes []uint64
	for _, u := range updates {
		out = append(out, u)
		if rng.Float64() < frac {
			out = append(out, stream.Insert(u.Value))
			pendingDeletes = append(pendingDeletes, u.Value)
		}
		// Occasionally flush a pending delete.
		if len(pendingDeletes) > 0 && rng.Float64() < 0.5 {
			last := len(pendingDeletes) - 1
			out = append(out, stream.Delete(pendingDeletes[last]))
			pendingDeletes = pendingDeletes[:last]
		}
	}
	for _, v := range pendingDeletes {
		out = append(out, stream.Delete(v))
	}
	return out
}
