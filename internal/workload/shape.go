package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseShape builds a Generator from a compact textual spec — the form
// load tools (cmd/loadgen, cmd/datagen pipelines) accept on the command
// line. Supported shapes:
//
//	uniform            uniform over [0, domain)
//	zipf               Zipf with the paper's z = 1.0
//	zipf:Z             Zipf with skew Z (Z ≥ 0)
//	SHAPE+shift:S      right-shift the base shape by S (mod domain),
//	                   the paper's join-size knob
//
// The generator draws from a private source seeded with seed, so a
// fixed (spec, domain, seed) triple reproduces the same value stream on
// every box — the property the deterministic harness tests and the CI
// bench-smoke run rely on.
func ParseShape(spec string, domain uint64, seed int64) (Generator, error) {
	if domain == 0 {
		return nil, fmt.Errorf("workload: domain must be positive")
	}
	base := strings.TrimSpace(spec)
	var shift uint64
	hasShift := false
	if i := strings.Index(base, "+"); i >= 0 {
		mod := strings.TrimSpace(base[i+1:])
		base = strings.TrimSpace(base[:i])
		val, ok := strings.CutPrefix(mod, "shift:")
		if !ok {
			return nil, fmt.Errorf("workload: unknown shape modifier %q (want shift:S)", mod)
		}
		s, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad shift in %q: %w", spec, err)
		}
		shift, hasShift = s, true
	}
	var g Generator
	switch {
	case base == "uniform":
		g = NewUniform(domain, seed)
	case base == "zipf":
		z, err := NewZipf(domain, 1.0, seed)
		if err != nil {
			return nil, err
		}
		g = z
	case strings.HasPrefix(base, "zipf:"):
		zv, err := strconv.ParseFloat(base[len("zipf:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad zipf skew in %q: %w", spec, err)
		}
		z, err := NewZipf(domain, zv, seed)
		if err != nil {
			return nil, err
		}
		g = z
	default:
		return nil, fmt.Errorf("workload: unknown shape %q (want uniform, zipf, or zipf:Z)", spec)
	}
	if hasShift {
		g = NewShifted(g, shift)
	}
	return g, nil
}
