package workload

import (
	"math"
	"testing"

	"skimsketch/internal/stream"
)

func TestNewZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1.0, 1); err == nil {
		t.Fatal("expected error for zero domain")
	}
	if _, err := NewZipf(10, -1, 1); err == nil {
		t.Fatal("expected error for negative z")
	}
}

func TestZipfInDomain(t *testing.T) {
	g, err := NewZipf(100, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Domain() != 100 {
		t.Fatalf("Domain = %d", g.Domain())
	}
	for i := 0; i < 10000; i++ {
		if v := g.Next(); v >= 100 {
			t.Fatalf("value %d outside domain", v)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, _ := NewZipf(64, 1.2, 5)
	b, _ := NewZipf(64, 1.2, 5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

// TestZipfSkewShape: value 0 should appear with frequency roughly
// proportional to 1/H_m for z=1, and rank-frequency should decay.
func TestZipfSkewShape(t *testing.T) {
	const m, n = 1024, 200000
	g, _ := NewZipf(m, 1.0, 11)
	f := stream.NewFreqVector()
	for i := 0; i < n; i++ {
		f.Update(g.Next(), 1)
	}
	// Expected P(0) = 1/H_m.
	h := 0.0
	for i := 1; i <= m; i++ {
		h += 1 / float64(i)
	}
	want := float64(n) / h
	got := float64(f.Get(0))
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("f(0) = %.0f, want ≈ %.0f", got, want)
	}
	if f.Get(0) <= f.Get(10) || f.Get(10) <= f.Get(200) {
		t.Fatalf("frequencies must decay with rank: f0=%d f10=%d f200=%d",
			f.Get(0), f.Get(10), f.Get(200))
	}
}

// TestZipfHigherSkewConcentrates: z=1.5 puts more mass on the top value
// than z=1.0.
func TestZipfHigherSkewConcentrates(t *testing.T) {
	const m, n = 4096, 100000
	lo, _ := NewZipf(m, 1.0, 2)
	hi, _ := NewZipf(m, 1.5, 2)
	fl, fh := stream.NewFreqVector(), stream.NewFreqVector()
	for i := 0; i < n; i++ {
		fl.Update(lo.Next(), 1)
		fh.Update(hi.Next(), 1)
	}
	if fh.Get(0) <= fl.Get(0) {
		t.Fatalf("z=1.5 top frequency %d should exceed z=1.0's %d", fh.Get(0), fl.Get(0))
	}
}

func TestShiftedMapsFrequencies(t *testing.T) {
	const m, n, shift = 512, 50000, 100
	base, _ := NewZipf(m, 1.0, 9)
	sh := NewShifted(base, shift)
	if sh.Domain() != m {
		t.Fatalf("Domain = %d", sh.Domain())
	}
	f := stream.NewFreqVector()
	for i := 0; i < n; i++ {
		f.Update(sh.Next(), 1)
	}
	// The shifted stream's most frequent value must be at `shift`.
	var best uint64
	var bestW int64
	for v, w := range f {
		if w > bestW {
			best, bestW = v, w
		}
	}
	if best != shift {
		t.Fatalf("mode at %d, want %d", best, shift)
	}
}

// TestShiftShrinksJoin verifies the paper's knob: larger shifts mean
// smaller joins between the base and shifted stream.
func TestShiftShrinksJoin(t *testing.T) {
	const m, n = 1024, 40000
	joins := make([]int64, 0, 3)
	for _, shift := range []uint64{0, 50, 300} {
		b1, _ := NewZipf(m, 1.0, 21)
		b2, _ := NewZipf(m, 1.0, 22)
		fs := MakeStream(b1, n)
		gs := MakeStream(NewShifted(b2, shift), n)
		joins = append(joins, stream.ExactJoinSize(fs, gs))
	}
	if !(joins[0] > joins[1] && joins[1] > joins[2]) {
		t.Fatalf("join sizes must shrink with shift: %v", joins)
	}
}

func TestUniform(t *testing.T) {
	g := NewUniform(16, 4)
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		v := g.Next()
		if v >= 16 {
			t.Fatalf("out of domain: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("value %d count %d far from uniform 1000", v, c)
		}
	}
}

func TestPermutedIsBijection(t *testing.T) {
	base := NewUniform(128, 1)
	p := NewPermuted(base, 2)
	seen := make(map[uint64]bool)
	for i, v := range p.perm {
		if v >= 128 {
			t.Fatalf("perm[%d]=%d out of domain", i, v)
		}
		if seen[v] {
			t.Fatalf("perm repeats %d", v)
		}
		seen[v] = true
	}
	if p.Domain() != 128 {
		t.Fatal("domain must pass through")
	}
	if v := p.Next(); v >= 128 {
		t.Fatalf("Next out of domain: %d", v)
	}
}

// TestPermutedPreservesFrequencyMultiset: permutation relabels values but
// keeps the sorted frequency profile identical.
func TestPermutedPreservesFrequencyMultiset(t *testing.T) {
	const m, n = 256, 20000
	b1, _ := NewZipf(m, 1.0, 31)
	b2, _ := NewZipf(m, 1.0, 31)
	plain := stream.NewFreqVector()
	perm := stream.NewFreqVector()
	pg := NewPermuted(b2, 77)
	for i := 0; i < n; i++ {
		plain.Update(b1.Next(), 1)
		perm.Update(pg.Next(), 1)
	}
	if plain.SelfJoinSize() != perm.SelfJoinSize() {
		t.Fatalf("self-join sizes differ: %d vs %d", plain.SelfJoinSize(), perm.SelfJoinSize())
	}
}

func TestMakeStream(t *testing.T) {
	g := NewUniform(8, 3)
	s := MakeStream(g, 100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for _, u := range s {
		if u.Weight != 1 {
			t.Fatal("MakeStream must emit inserts")
		}
	}
}

func TestWithDeletesPreservesNetVector(t *testing.T) {
	g, _ := NewZipf(256, 1.0, 13)
	base := MakeStream(g, 5000)
	noisy := WithDeletes(base, 0.3, 99)
	if len(noisy) <= len(base) {
		t.Fatal("delete noise must add updates")
	}
	want, got := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(base, want)
	stream.Apply(noisy, got)
	if len(want) != len(got) {
		t.Fatalf("support %d vs %d", len(want), len(got))
	}
	for v, w := range want {
		if got[v] != w {
			t.Fatalf("net frequency of %d changed: %d vs %d", v, got[v], w)
		}
	}
}

func TestCensusPairShape(t *testing.T) {
	wage, ot := CensusPair(20000, 5)
	if len(wage) != 20000 || len(ot) != 20000 {
		t.Fatal("record counts")
	}
	fw, fo := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(wage, fw)
	stream.Apply(ot, fo)
	for v := range fw {
		if v >= CensusDomain {
			t.Fatalf("wage value %d out of domain", v)
		}
	}
	for v := range fo {
		if v >= CensusDomain {
			t.Fatalf("overtime value %d out of domain", v)
		}
	}
	// Overtime must be mostly zero; wage zero spike around 18%.
	if z := float64(fo.Get(0)) / 20000; z < 0.75 {
		t.Fatalf("overtime zero fraction %.2f too small", z)
	}
	wz := float64(fw.Get(0)) / 20000
	if wz < 0.12 || wz > 0.25 {
		t.Fatalf("wage zero fraction %.2f outside expected band", wz)
	}
	// The join must be non-trivial (dominated by the shared zero spike).
	if j := fw.InnerProduct(fo); j <= 0 {
		t.Fatalf("join size %d must be positive", j)
	}
}

func TestCensusDeterministic(t *testing.T) {
	w1, o1 := CensusPair(1000, 9)
	w2, o2 := CensusPair(1000, 9)
	for i := range w1 {
		if w1[i] != w2[i] || o1[i] != o2[i] {
			t.Fatal("census generation must be deterministic per seed")
		}
	}
}
