package workload

import (
	"math"
	"math/rand"

	"skimsketch/internal/stream"
)

// Census-like synthetic data. The paper's real-life experiment joins the
// "weekly wage" and "weekly wage overtime" attributes of the September
// 2002 Current Population Survey (159,434 records, domain size 1024 for
// each attribute). That file is not redistributable, so CensusPair
// generates a synthetic stand-in with the same record count and domain
// size and the qualitative features the experiment depends on:
//
//   - wages follow a heavily-skewed distribution with a large spike at 0
//     (non-workers) and a log-normal body clipped to the domain, so a few
//     values are very dense while a long tail is sparse;
//   - overtime wages are 0 for most records and otherwise a small,
//     noisy fraction of the wage, so the two attributes share dense values
//     near the bottom of the range and the join is dominated by a few
//     frequency spikes — exactly the regime that separates skimmed
//     sketches from basic AGMS.

// CensusDefaultRecords matches the paper's September 2002 record count.
const CensusDefaultRecords = 159434

// CensusDomain matches the paper's per-attribute domain size.
const CensusDomain = 1024

// CensusPair returns the two census-like update streams (wage, overtime)
// with n records each over domain [0, CensusDomain).
func CensusPair(n int, seed int64) (wage, overtime []stream.Update) {
	return CensusPairRand(n, rngFromSeed(seed))
}

// CensusPairRand is CensusPair drawing from an injected source.
func CensusPairRand(n int, rng *rand.Rand) (wage, overtime []stream.Update) {
	wage = make([]stream.Update, n)
	overtime = make([]stream.Update, n)
	for i := 0; i < n; i++ {
		w := censusWage(rng)
		wage[i] = stream.Insert(w)
		overtime[i] = stream.Insert(censusOvertime(rng, w))
	}
	return wage, overtime
}

// censusWage draws one weekly-wage bucket.
func censusWage(rng *rand.Rand) uint64 {
	if rng.Float64() < 0.18 { // spike of zero earners
		return 0
	}
	// Log-normal body: median near bucket 110, clipped into the domain.
	v := math.Exp(rng.NormFloat64()*0.8 + math.Log(110))
	b := uint64(v)
	if b >= CensusDomain {
		b = CensusDomain - 1
	}
	return b
}

// censusOvertime draws one weekly-overtime bucket given the wage bucket.
func censusOvertime(rng *rand.Rand, wage uint64) uint64 {
	if rng.Float64() < 0.85 { // most records report no overtime
		return 0
	}
	frac := 0.05 + 0.3*rng.Float64()
	b := uint64(frac * float64(wage))
	if b >= CensusDomain {
		b = CensusDomain - 1
	}
	return b
}
