package workload

import "math/rand"

// Mixture draws from a small set of "hot" values with probability
// HotProb and from a base generator otherwise — the traffic shape of the
// paper's network-monitoring motivation (a few chatty sources over a
// long uniform tail) and the cleanest way to plant known dense values
// for tests and demos.
type Mixture struct {
	hot     []uint64
	hotProb float64
	base    Generator
	rng     *rand.Rand
}

// NewMixture wraps base. hot values should lie in base's domain; hotProb
// is clamped to [0, 1].
func NewMixture(base Generator, hot []uint64, hotProb float64, seed int64) *Mixture {
	return NewMixtureRand(base, hot, hotProb, rngFromSeed(seed))
}

// NewMixtureRand is NewMixture drawing from an injected source.
func NewMixtureRand(base Generator, hot []uint64, hotProb float64, rng *rand.Rand) *Mixture {
	if hotProb < 0 {
		hotProb = 0
	}
	if hotProb > 1 {
		hotProb = 1
	}
	h := make([]uint64, len(hot))
	copy(h, hot)
	return &Mixture{hot: h, hotProb: hotProb, base: base, rng: rng}
}

// Next draws one value.
func (g *Mixture) Next() uint64 {
	if len(g.hot) > 0 && g.rng.Float64() < g.hotProb {
		return g.hot[g.rng.Intn(len(g.hot))]
	}
	return g.base.Next()
}

// Domain returns the base generator's domain.
func (g *Mixture) Domain() uint64 { return g.base.Domain() }

// Drift switches between two generators after a fixed number of draws,
// modelling workload migration — the regime sliding-window estimates are
// for (see examples/windowed).
type Drift struct {
	before, after Generator
	switchAt      int64
	drawn         int64
}

// NewDrift draws from before for the first switchAt values and from
// after subsequently. The two generators must share a domain.
func NewDrift(before, after Generator, switchAt int64) *Drift {
	if before.Domain() != after.Domain() {
		panic("workload: Drift generators must share a domain")
	}
	return &Drift{before: before, after: after, switchAt: switchAt}
}

// Next draws one value.
func (g *Drift) Next() uint64 {
	g.drawn++
	if g.drawn <= g.switchAt {
		return g.before.Next()
	}
	return g.after.Next()
}

// Domain returns the shared domain.
func (g *Drift) Domain() uint64 { return g.before.Domain() }
