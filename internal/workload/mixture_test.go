package workload

import (
	"testing"

	"skimsketch/internal/stream"
)

func TestMixtureHotMass(t *testing.T) {
	base := NewUniform(1<<12, 1)
	hot := []uint64{5, 900}
	g := NewMixture(base, hot, 0.5, 2)
	if g.Domain() != 1<<12 {
		t.Fatalf("Domain = %d", g.Domain())
	}
	f := stream.NewFreqVector()
	const n = 40000
	for i := 0; i < n; i++ {
		f.Update(g.Next(), 1)
	}
	hotMass := f.Get(5) + f.Get(900)
	frac := float64(hotMass) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("hot mass fraction %.3f, want ≈ 0.5", frac)
	}
	// Both hot values should be far denser than any typical base value.
	if f.Get(5) < 1000 || f.Get(900) < 1000 {
		t.Fatalf("hot values too light: %d/%d", f.Get(5), f.Get(900))
	}
}

func TestMixtureClampsProb(t *testing.T) {
	base := NewUniform(16, 1)
	all := NewMixture(base, []uint64{3}, 2.0, 2) // clamped to 1
	for i := 0; i < 100; i++ {
		if all.Next() != 3 {
			t.Fatal("hotProb 1 must always draw hot")
		}
	}
	none := NewMixture(base, []uint64{3}, -1, 2) // clamped to 0
	hits := 0
	for i := 0; i < 1000; i++ {
		if none.Next() == 3 {
			hits++
		}
	}
	if hits > 200 { // only base-rate occurrences of value 3
		t.Fatalf("hotProb 0 drew hot %d times", hits)
	}
}

func TestMixtureEmptyHotFallsBack(t *testing.T) {
	base := NewUniform(16, 1)
	g := NewMixture(base, nil, 0.9, 2)
	for i := 0; i < 100; i++ {
		if g.Next() >= 16 {
			t.Fatal("must fall back to base")
		}
	}
}

func TestMixtureCopiesHotSlice(t *testing.T) {
	hot := []uint64{1}
	g := NewMixture(NewUniform(16, 1), hot, 1, 2)
	hot[0] = 9
	if g.Next() != 1 {
		t.Fatal("Mixture must copy the hot slice")
	}
}

func TestDriftSwitches(t *testing.T) {
	before := NewMixture(NewUniform(64, 1), []uint64{7}, 1, 2) // always 7
	after := NewMixture(NewUniform(64, 3), []uint64{50}, 1, 4) // always 50
	g := NewDrift(before, after, 10)
	if g.Domain() != 64 {
		t.Fatalf("Domain = %d", g.Domain())
	}
	for i := 0; i < 10; i++ {
		if g.Next() != 7 {
			t.Fatalf("draw %d should come from the before generator", i)
		}
	}
	for i := 0; i < 10; i++ {
		if g.Next() != 50 {
			t.Fatal("post-switch draws should come from the after generator")
		}
	}
}

func TestDriftDomainMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDrift(NewUniform(16, 1), NewUniform(32, 2), 5)
}
