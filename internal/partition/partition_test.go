package partition

import (
	"testing"

	"skimsketch/internal/agms"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if err := (Config{Singletons: -1, ResidueS1: 1, ResidueS2: 1}).Validate(); err == nil {
		t.Fatal("expected error for negative singletons")
	}
	if err := (Config{ResidueS1: 0, ResidueS2: 1}).Validate(); err == nil {
		t.Fatal("expected error for zero residue dims")
	}
	if _, err := NewPair(nil, nil, 0, Config{ResidueS1: 1, ResidueS2: 1}); err == nil {
		t.Fatal("expected error for zero domain")
	}
	if _, err := NewPair(nil, nil, 16, Config{Singletons: -2, ResidueS1: 1, ResidueS2: 1}); err == nil {
		t.Fatal("expected config error")
	}
}

func TestSingletonsAreExact(t *testing.T) {
	statsF := stream.FreqVector{1: 1000, 2: 5}
	statsG := stream.FreqVector{1: 800, 3: 7}
	p, err := NewPair(statsF, statsG, 16, Config{Singletons: 1, ResidueS1: 8, ResidueS2: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Singletons() != 1 {
		t.Fatalf("Singletons = %d", p.Singletons())
	}
	// Value 1 must be the isolated one (largest score); its subjoin is
	// then exact regardless of sketch noise.
	for i := 0; i < 100; i++ {
		p.UpdateF(1, 1)
	}
	for i := 0; i < 50; i++ {
		p.UpdateG(1, 1)
	}
	est, err := p.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est != 5000 {
		t.Fatalf("estimate = %d, want exact 5000", est)
	}
}

func TestWords(t *testing.T) {
	p, err := NewPair(stream.FreqVector{1: 10, 2: 9, 3: 8}, nil, 16,
		Config{Singletons: 2, ResidueS1: 4, ResidueS2: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Words() != 2+12 {
		t.Fatalf("Words = %d", p.Words())
	}
}

func TestSingletonsCappedByCandidates(t *testing.T) {
	p, err := NewPair(stream.FreqVector{5: 3}, nil, 16,
		Config{Singletons: 10, ResidueS1: 2, ResidueS2: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Singletons() != 1 {
		t.Fatalf("Singletons = %d, want 1 (only one candidate)", p.Singletons())
	}
}

func TestSinksRoute(t *testing.T) {
	p, err := NewPair(stream.FreqVector{1: 100}, nil, 16,
		Config{Singletons: 1, ResidueS1: 2, ResidueS2: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Apply([]stream.Update{stream.Insert(1), stream.Insert(2)}, p.FSink())
	stream.Apply([]stream.Update{stream.Insert(1)}, p.GSink())
	if p.fCount[0] != 1 || p.gCount[0] != 1 {
		t.Fatal("singleton counters must receive routed updates")
	}
}

// TestPartitionedBeatsPlainAGMS: with exact prior statistics and heavy
// values isolated, partitioned sketching must beat plain AGMS at equal
// space on skewed data — reproducing Dobra et al.'s improvement.
func TestPartitionedBeatsPlainAGMS(t *testing.T) {
	const m, n = 1 << 12, 60000
	const words = 640
	zf, _ := workload.NewZipf(m, 1.4, 11)
	zg, _ := workload.NewZipf(m, 1.4, 12)
	fs := workload.MakeStream(zf, n)
	gs := workload.MakeStream(workload.NewShifted(zg, 10), n)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(fs, fv)
	stream.Apply(gs, gv)
	exact := float64(fv.InnerProduct(gv))

	var partErr, agmsErr float64
	const seeds = 5
	for seed := uint64(0); seed < seeds; seed++ {
		const singles = 64
		p, err := NewPair(fv, gv, m, Config{
			Singletons: singles,
			ResidueS1:  (words - singles) / 5,
			ResidueS2:  5,
			Seed:       seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		stream.Apply(fs, p.FSink())
		stream.Apply(gs, p.GSink())
		pe, err := p.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		partErr += stats.SymmetricError(float64(pe), exact)

		af := agms.MustNew(words/5, 5, 100+seed)
		ag := agms.MustNew(words/5, 5, 100+seed)
		stream.Apply(fs, af)
		stream.Apply(gs, ag)
		ae, err := agms.JoinEstimate(af, ag)
		if err != nil {
			t.Fatal(err)
		}
		agmsErr += stats.SymmetricError(float64(ae), exact)
	}
	partErr /= seeds
	agmsErr /= seeds
	t.Logf("partitioned err %.4f vs plain AGMS %.4f", partErr, agmsErr)
	if partErr >= agmsErr {
		t.Fatalf("partitioned (%.4f) must beat plain AGMS (%.4f) with exact priors", partErr, agmsErr)
	}
}

// TestDeleteInvariance: partitioned estimates are linear too.
func TestDeleteInvariance(t *testing.T) {
	st := stream.FreqVector{1: 100}
	mk := func() *Pair {
		p, err := NewPair(st, nil, 16, Config{Singletons: 1, ResidueS1: 4, ResidueS2: 3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	a.UpdateF(1, 2)
	a.UpdateF(7, 3)
	a.UpdateG(1, 1)
	b.UpdateF(1, 2)
	b.UpdateF(7, 3)
	b.UpdateF(9, 5)
	b.UpdateF(9, -5)
	b.UpdateG(1, 1)
	b.UpdateG(3, 2)
	b.UpdateG(3, -2)
	ea, _ := a.Estimate()
	eb, _ := b.Estimate()
	if ea != eb {
		t.Fatalf("delete noise changed estimate: %d vs %d", ea, eb)
	}
}
