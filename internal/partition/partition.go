// Package partition implements the sketch-partitioning baseline of
// Dobra, Garofalakis, Gehrke & Rastogi (SIGMOD 2002), the third method
// the paper positions against: the value domain is split into partitions
// using *a-priori* coarse frequency statistics, each partition gets its
// own basic-AGMS sketch pair, and the join size is estimated as the sum
// of per-partition estimates. Isolating the dominant frequencies into
// their own partitions shrinks the per-partition self-join sizes that
// drive the AGMS error — the same effect skimming achieves, but bought
// with prior knowledge of the distribution instead of on-line extraction.
// The paper's criticism (Section 1) is that such statistics "may not
// always be available in a data-stream setting"; this package makes the
// comparison concrete by granting the baseline exact pre-computed
// frequency vectors, its best case.
//
// Partitioning heuristic: the values with the largest f_v²·g_v² products
// (the variance contributors) are isolated into singleton partitions,
// which need only a single counter each to be summarized exactly; the
// residue shares one AGMS sketch pair that receives all remaining space.
package partition

import (
	"fmt"
	"sort"

	"skimsketch/internal/agms"
	"skimsketch/internal/stream"
)

// Config sizes a partitioned estimator.
type Config struct {
	// Singletons is the number of heavy values isolated into their own
	// exact single-counter partitions.
	Singletons int
	// ResidueS1 and ResidueS2 are the AGMS dimensions of the shared
	// residue partition.
	ResidueS1, ResidueS2 int
	// Seed derives the residue sketches' ξ families.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Singletons < 0 {
		return fmt.Errorf("partition: Singletons must be non-negative, got %d", c.Singletons)
	}
	if c.ResidueS1 <= 0 || c.ResidueS2 <= 0 {
		return fmt.Errorf("partition: residue sketch dimensions must be positive, got %dx%d", c.ResidueS1, c.ResidueS2)
	}
	return nil
}

// Pair is a partitioned join estimator over two streams.
type Pair struct {
	domain uint64
	// singletonOf maps an isolated value to its counter index; all other
	// values go to the residue sketches.
	singletonOf map[uint64]int
	fCount      []int64 // exact counters for singleton partitions, F side
	gCount      []int64
	fRes, gRes  *agms.Sketch
}

// NewPair builds the partitioning from the a-priori statistics (the
// coarse frequency knowledge Dobra et al. assume) and allocates the
// sketches. statsF and statsG may be approximate; only their ranking
// matters for partition quality, while correctness is unconditional.
func NewPair(statsF, statsG stream.FreqVector, domain uint64, cfg Config) (*Pair, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if domain == 0 {
		return nil, fmt.Errorf("partition: domain must be positive")
	}

	type scored struct {
		v     uint64
		score float64
	}
	var candidates []scored
	for v, fw := range statsF {
		gw := statsG.Get(v)
		// Variance contribution ≈ f_v²·g_v² for joining values, f_v²·F2g
		// otherwise; rank by the self-join energy product with a floor so
		// heavy one-sided values still get isolated.
		s := float64(fw) * float64(fw) * (1 + float64(gw)*float64(gw))
		candidates = append(candidates, scored{v: v, score: s})
	}
	for v, gw := range statsG {
		if _, ok := statsF[v]; ok {
			continue
		}
		candidates = append(candidates, scored{v: v, score: float64(gw) * float64(gw)})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].score != candidates[j].score {
			return candidates[i].score > candidates[j].score
		}
		return candidates[i].v < candidates[j].v
	})

	n := cfg.Singletons
	if n > len(candidates) {
		n = len(candidates)
	}
	singletonOf := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		singletonOf[candidates[i].v] = i
	}
	fRes, err := agms.New(cfg.ResidueS1, cfg.ResidueS2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gRes, err := agms.New(cfg.ResidueS1, cfg.ResidueS2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Pair{
		domain:      domain,
		singletonOf: singletonOf,
		fCount:      make([]int64, n),
		gCount:      make([]int64, n),
		fRes:        fRes,
		gRes:        gRes,
	}, nil
}

// UpdateF folds one F-stream element.
func (p *Pair) UpdateF(value uint64, weight int64) {
	if i, ok := p.singletonOf[value]; ok {
		p.fCount[i] += weight
		return
	}
	p.fRes.Update(value, weight)
}

// UpdateG folds one G-stream element.
func (p *Pair) UpdateG(value uint64, weight int64) {
	if i, ok := p.singletonOf[value]; ok {
		p.gCount[i] += weight
		return
	}
	p.gRes.Update(value, weight)
}

// FSink and GSink adapt the two sides to stream.Sink.
func (p *Pair) FSink() stream.Sink { return sinkFunc(p.UpdateF) }

// GSink adapts the G side to stream.Sink.
func (p *Pair) GSink() stream.Sink { return sinkFunc(p.UpdateG) }

type sinkFunc func(uint64, int64)

func (f sinkFunc) Update(v uint64, w int64) { f(v, w) }

// Estimate sums the exact singleton subjoins and the residue-sketch
// estimate.
func (p *Pair) Estimate() (int64, error) {
	var total int64
	for i := range p.fCount {
		total += p.fCount[i] * p.gCount[i]
	}
	res, err := agms.JoinEstimate(p.fRes, p.gRes)
	if err != nil {
		return 0, err
	}
	return total + res, nil
}

// Words returns the synopsis size in counter words per stream: one word
// per singleton plus the residue sketch.
func (p *Pair) Words() int { return len(p.fCount) + p.fRes.Words() }

// Singletons returns the number of isolated values.
func (p *Pair) Singletons() int { return len(p.fCount) }
