module skimsketch

go 1.22
