package skimsketch_test

import (
	"fmt"

	"skimsketch"
)

// The canonical flow: build a pair of sketches with one Config, stream
// updates into each side, and estimate the join size. All randomness is
// derived from the seed, so the example output is reproducible.
func ExampleJoinPair() {
	pair, err := skimsketch.NewJoinPair(1024, skimsketch.Config{Tables: 5, Buckets: 64, Seed: 1})
	if err != nil {
		panic(err)
	}
	// Stream F: value 7 appears 100 times. Stream G: 40 times.
	for i := 0; i < 100; i++ {
		pair.UpdateF(7, 1)
	}
	for i := 0; i < 40; i++ {
		pair.UpdateG(7, 1)
	}
	est, err := pair.Estimate()
	if err != nil {
		panic(err)
	}
	fmt.Println("estimate:", est.Total)
	// Output: estimate: 4000
}

// Deletions are negative weights; a deleted element leaves no trace in
// the synopsis (sketch linearity).
func ExampleEstimateJoin_deletes() {
	cfg := skimsketch.Config{Tables: 5, Buckets: 64, Seed: 2}
	f, _ := skimsketch.New(cfg)
	g, _ := skimsketch.New(cfg)
	f.Update(3, 10)
	f.Update(99, 5)
	f.Update(99, -5) // retract all 99s
	g.Update(3, 6)
	est, err := skimsketch.EstimateJoin(f, g, 128)
	if err != nil {
		panic(err)
	}
	fmt.Println("estimate:", est.Total)
	// Output: estimate: 60
}

// SUM aggregates are COUNT queries over measure-weighted updates: weight
// each G-side element by its measure.
func ExampleEstimateJoin_sum() {
	cfg := skimsketch.Config{Tables: 5, Buckets: 64, Seed: 3}
	facts, _ := skimsketch.New(cfg)
	revenue, _ := skimsketch.New(cfg)
	facts.Update(42, 1)     // one subscriber interested in product 42
	revenue.Update(42, 250) // a sale of product 42 worth 250
	revenue.Update(42, 120) // another worth 120
	est, err := skimsketch.EstimateJoin(facts, revenue, 128)
	if err != nil {
		panic(err)
	}
	fmt.Println("SUM estimate:", est.Total)
	// Output: SUM estimate: 370
}
