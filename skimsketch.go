// Package skimsketch estimates join-aggregate queries over data streams
// using skimmed sketches, reproducing "Processing Data-Stream Join
// Aggregates Using Skimmed Sketches" (Ganguly, Garofalakis, Rastogi;
// EDBT 2004).
//
// The central object is the Sketch — a hash-sketch synopsis of one stream
// that costs O(Tables) time per stream element and Tables×Buckets words
// of memory. Two sketches built with the same Config summarize two
// streams F and G; EstimateJoin then estimates COUNT(F ⋈ G) = Σ_v f_v·g_v
// by skimming the dense frequencies out of both sketches, joining the
// dense parts exactly, and joining the residual (sparse) parts via the
// sketches. SUM aggregates are COUNT queries over measure-weighted
// updates (use Update with the measure as the weight), and deletions are
// simply negative weights.
//
// Quick start:
//
//	cfg := skimsketch.Config{Tables: 7, Buckets: 1024, Seed: 42}
//	f, _ := skimsketch.New(cfg)
//	g, _ := skimsketch.New(cfg) // same cfg ⇒ valid join pair
//	for _, v := range streamF {
//		f.Update(v, +1)
//	}
//	for _, v := range streamG {
//		g.Update(v, +1)
//	}
//	est, _ := skimsketch.EstimateJoin(f, g, domain)
//	fmt.Println("COUNT(F ⋈ G) ≈", est.Total)
//
// The subpackages under internal/ hold the full implementation: the
// reference and dyadic-accelerated skimming procedures, the basic AGMS
// baseline, Count-Min and heavy-hitter synopses, workload generators and
// the experiment harness reproducing the paper's evaluation.
package skimsketch

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/dyadic"
	"skimsketch/internal/stream"
)

// Config describes a sketch: Tables (d, the median-boosting dimension;
// use an odd value), Buckets (b, per-table), and Seed (shared by both
// sketches of a join pair).
type Config = core.Config

// Sketch is a hash-sketch synopsis of one update stream.
type Sketch = core.HashSketch

// Estimate is a decomposed join-size estimate; Total is Ĵ.
type Estimate = core.Estimate

// Options tunes EstimateJoin (skim thresholds, skim disable).
type Options = core.Options

// Update is one stream element (Value, signed Weight).
type Update = stream.Update

// Hierarchy is a dyadic stack of sketches supporting O(b·d·log m)
// dense-frequency extraction for very large domains.
type Hierarchy = dyadic.Hierarchy

// New returns an empty sketch for the configuration.
func New(cfg Config) (*Sketch, error) { return core.NewHashSketch(cfg) }

// EstimateJoin estimates COUNT(F ⋈ G) over the value domain [0, domain)
// with default skim thresholds. The sketches are not modified.
func EstimateJoin(f, g *Sketch, domain uint64) (Estimate, error) {
	return core.EstimateJoin(f, g, domain, nil)
}

// EstimateJoinOptions is EstimateJoin with explicit Options.
func EstimateJoinOptions(f, g *Sketch, domain uint64, opts Options) (Estimate, error) {
	return core.EstimateJoin(f, g, domain, &opts)
}

// NewHierarchy returns a dyadic hierarchy over the domain [0, 2^bits) for
// workloads whose domain is too large to scan at skim time.
func NewHierarchy(bits int, cfg Config) (*Hierarchy, error) {
	return dyadic.New(bits, cfg)
}

// JoinPair bundles the two sketches of one join query with their domain,
// the most convenient shape for application code.
type JoinPair struct {
	f, g   *Sketch
	domain uint64
}

// NewJoinPair builds a compatible pair of sketches over [0, domain).
func NewJoinPair(domain uint64, cfg Config) (*JoinPair, error) {
	if domain == 0 {
		return nil, fmt.Errorf("skimsketch: domain must be positive")
	}
	f, err := core.NewHashSketch(cfg)
	if err != nil {
		return nil, err
	}
	g, err := core.NewHashSketch(cfg)
	if err != nil {
		return nil, err
	}
	return &JoinPair{f: f, g: g, domain: domain}, nil
}

// UpdateF folds one element of stream F.
func (p *JoinPair) UpdateF(value uint64, weight int64) { p.f.Update(value, weight) }

// UpdateG folds one element of stream G.
func (p *JoinPair) UpdateG(value uint64, weight int64) { p.g.Update(value, weight) }

// F returns the F-side sketch (a stream.Sink).
func (p *JoinPair) F() *Sketch { return p.f }

// G returns the G-side sketch (a stream.Sink).
func (p *JoinPair) G() *Sketch { return p.g }

// Domain returns the value domain size.
func (p *JoinPair) Domain() uint64 { return p.domain }

// Words returns the total synopsis size in counter words.
func (p *JoinPair) Words() int { return p.f.Words() + p.g.Words() }

// Estimate runs the skimmed-sketch estimator on the current sketches.
func (p *JoinPair) Estimate() (Estimate, error) {
	return core.EstimateJoin(p.f, p.g, p.domain, nil)
}
