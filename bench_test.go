// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Accuracy
// figures (5a, 5b, census, ablation) run a scaled-down configuration per
// iteration and report the measured mean symmetric errors as custom
// metrics next to the timing; per-element cost claims are plain ns/op
// benchmarks. cmd/expdriver runs the same experiments at larger scale
// with full tables.
package skimsketch

import (
	"strings"
	"testing"

	"skimsketch/internal/agms"
	"skimsketch/internal/core"
	"skimsketch/internal/dyadic"
	"skimsketch/internal/engine"
	"skimsketch/internal/experiments"
	"skimsketch/internal/stream"
	"skimsketch/internal/tracked"
	"skimsketch/internal/workload"
)

// benchFig5 runs one laptop-scale figure configuration and reports the
// top-space mean errors of the two methods as custom metrics.
func benchFig5(b *testing.B, zipf float64, shifts []uint64) {
	cfg := experiments.Fig5Config{
		Domain:     1 << 12,
		StreamLen:  50000,
		Zipf:       zipf,
		Shifts:     shifts,
		SpaceWords: []int{640, 2560},
		Seeds:      1,
		AGMSRows:   []int{11},
		SkimTables: []int{5},
	}
	var agmsErr, skimErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		agmsErr, skimErr = 0, 0
		var na, ns int
		for _, s := range res.Series {
			p := s.Points[len(s.Points)-1]
			if strings.HasPrefix(s.Label, "BasicAGMS") {
				agmsErr += p.Err
				na++
			} else {
				skimErr += p.Err
				ns++
			}
		}
		agmsErr /= float64(na)
		skimErr /= float64(ns)
	}
	b.ReportMetric(agmsErr, "agms-err")
	b.ReportMetric(skimErr, "skim-err")
}

// BenchmarkFigure5a regenerates Figure 5(a): Zipf 1.0 with right shifts.
func BenchmarkFigure5a(b *testing.B) { benchFig5(b, 1.0, []uint64{100, 200, 300}) }

// BenchmarkFigure5b regenerates Figure 5(b): Zipf 1.5 with right shifts.
func BenchmarkFigure5b(b *testing.B) { benchFig5(b, 1.5, []uint64{30, 50}) }

// BenchmarkCensus regenerates the census-like table (full version of the
// paper): wage ⋈ overtime at a few space budgets.
func BenchmarkCensus(b *testing.B) {
	cfg := experiments.CensusConfig{
		Records:         30000,
		SpaceWords:      []int{512, 1024},
		Seeds:           1,
		AGMSRows:        []int{11},
		SkimTables:      []int{5},
		IncludeSampling: true,
	}
	var agmsErr, skimErr, sampErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCensus(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			p := s.Points[len(s.Points)-1]
			switch s.Label {
			case "BasicAGMS":
				agmsErr = p.Err
			case "Skimmed":
				skimErr = p.Err
			case "Sampling":
				sampErr = p.Err
			}
		}
	}
	b.ReportMetric(agmsErr, "agms-err")
	b.ReportMetric(skimErr, "skim-err")
	b.ReportMetric(sampErr, "sampling-err")
}

// benchValues pre-draws a value stream for the update-cost benchmarks.
func benchValues(n int) []uint64 {
	g, err := workload.NewZipf(1<<16, 1.0, 1)
	if err != nil {
		panic(err)
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = g.Next()
	}
	return vs
}

// BenchmarkUpdateSkimmedSketch measures the paper's O(d) per-element
// maintenance cost of the hash sketch at 8K words.
func BenchmarkUpdateSkimmedSketch(b *testing.B) {
	vs := benchValues(4096)
	sk := core.MustNewHashSketch(core.Config{Tables: 7, Buckets: 8192 / 7, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Update(vs[i&4095], 1)
	}
}

// BenchmarkUpdateBasicAGMS measures basic sketching's O(s1·s2)
// per-element cost at the same 8K words — the contrast behind the
// paper's update-time claim.
func BenchmarkUpdateBasicAGMS(b *testing.B) {
	vs := benchValues(4096)
	sk := agms.MustNew(8192/11, 11, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Update(vs[i&4095], 1)
	}
}

// BenchmarkUpdateDyadicHierarchy measures the O(d·log m) per-element cost
// of the dyadic hierarchy used by the fast skimmer.
func BenchmarkUpdateDyadicHierarchy(b *testing.B) {
	vs := benchValues(4096)
	h := dyadic.MustNew(16, core.Config{Tables: 7, Buckets: 8192 / 7, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Update(vs[i&4095], 1)
	}
}

// buildJoinPair charges a pair of hash sketches with a skewed join for
// the estimation-time benchmarks.
func buildJoinPair(b *testing.B, domain uint64, n int, c core.Config) (*core.HashSketch, *core.HashSketch) {
	b.Helper()
	f := core.MustNewHashSketch(c)
	g := core.MustNewHashSketch(c)
	zf, _ := workload.NewZipf(domain, 1.2, 3)
	zg, _ := workload.NewZipf(domain, 1.2, 4)
	stream.Apply(workload.MakeStream(zf, n), f)
	stream.Apply(workload.MakeStream(workload.NewShifted(zg, 50), n), g)
	return f, g
}

// BenchmarkEstimateJoinSkim measures query-time cost of the full skimmed
// estimator (clone + skim + four subjoins) at domain 2^14.
func BenchmarkEstimateJoinSkim(b *testing.B) {
	const domain = 1 << 14
	f, g := buildJoinPair(b, domain, 100000, core.Config{Tables: 7, Buckets: 1024, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateJoin(f, g, domain, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateJoinNoSkim is the ablation partner: identical sketches
// and space, skimming disabled.
func BenchmarkEstimateJoinNoSkim(b *testing.B) {
	const domain = 1 << 14
	f, g := buildJoinPair(b, domain, 100000, core.Config{Tables: 7, Buckets: 1024, Seed: 9})
	opts := &core.Options{NoSkim: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateJoin(f, g, domain, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSkim reports the accuracy gap that skimming buys at
// equal space on a skewed join (the DESIGN.md ablation experiment).
func BenchmarkAblationSkim(b *testing.B) {
	cfg := experiments.AblationConfig{
		Domain:     1 << 12,
		StreamLen:  50000,
		Shift:      30,
		Zipfs:      []float64{1.5},
		SpaceWords: []int{640},
		Seeds:      2,
		Tables:     5,
	}
	var on, off float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			if strings.HasPrefix(s.Label, "NoSkim") {
				off = s.Points[0].Err
			} else {
				on = s.Points[0].Err
			}
		}
	}
	b.ReportMetric(on, "skim-err")
	b.ReportMetric(off, "noskim-err")
}

// BenchmarkSkimDenseNaive measures the reference O(m·d) extraction.
func BenchmarkSkimDenseNaive(b *testing.B) {
	const domain = 1 << 14
	f, _ := buildJoinPair(b, domain, 100000, core.Config{Tables: 5, Buckets: 1024, Seed: 9})
	thr := f.DefaultSkimThreshold()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := f.Clone()
		if _, err := c.SkimDense(domain, thr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkimDenseDyadic measures the O(b·d·log m) dyadic extraction at
// the same domain and threshold (Section 4.2's optimization).
func BenchmarkSkimDenseDyadic(b *testing.B) {
	const bits = 14
	h := dyadic.MustNew(bits, core.Config{Tables: 5, Buckets: 1024, Seed: 9})
	zf, _ := workload.NewZipf(1<<bits, 1.2, 3)
	for _, u := range workload.MakeStream(zf, 100000) {
		h.Update(u.Value, u.Weight)
	}
	thr := h.DefaultSkimThreshold()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Rebuild by unskimming is cheaper than recharging; skim mutates.
		b.StartTimer()
		dense, err := h.Skim(thr)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for l := 0; l <= bits; l++ {
			parent := stream.NewFreqVector()
			for v, w := range dense {
				parent.Update(v>>uint(l), w)
			}
			h.Level(l).Unskim(parent)
		}
		b.StartTimer()
	}
}

// BenchmarkSkimDenseTracked measures the tracker-based extraction (the
// third strategy: O(k·d) at query time, no domain scan, no hierarchy).
func BenchmarkSkimDenseTracked(b *testing.B) {
	const domain = 1 << 14
	tr := tracked.MustNew(64, core.Config{Tables: 5, Buckets: 1024, Seed: 9})
	zf, _ := workload.NewZipf(domain, 1.2, 3)
	for _, u := range workload.MakeStream(zf, 100000) {
		tr.Update(u.Value, u.Weight)
	}
	thr := tr.Base().DefaultSkimThreshold()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Skim(thr); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngestEngine builds an engine with streams F and G and one COUNT
// join query for the ingestion-path benchmarks.
func benchIngestEngine(b *testing.B) *engine.Engine {
	b.Helper()
	e, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 7, Buckets: 1024, Seed: 42}})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []string{"F", "G"} {
		if err := e.DeclareStream(s, 1<<14); err != nil {
			b.Fatal(err)
		}
	}
	err = e.RegisterQuery(engine.QuerySpec{
		Name:  "q",
		Agg:   engine.Count,
		Left:  engine.Side{Stream: "F"},
		Right: engine.Side{Stream: "G"},
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchIngestStream pre-draws an update stream for the engine benchmarks.
func benchIngestStream(n int) []stream.Update {
	z, err := workload.NewZipf(1<<14, 1.0, 9)
	if err != nil {
		panic(err)
	}
	return workload.MakeStream(z, n)
}

// BenchmarkEngineIngestSequential is the pre-pipeline baseline: one
// engine.Update call per element, fully serialized.
func BenchmarkEngineIngestSequential(b *testing.B) {
	e := benchIngestEngine(b)
	us := benchIngestStream(8192)
	b.SetBytes(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := us[i&8191]
		if err := e.Update("F", u.Value, u.Weight); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
}

// BenchmarkEngineIngestParallel drives the concurrent batched pipeline at
// 4 workers with 256-element batches; compare updates/sec against
// BenchmarkEngineIngestSequential for the pipeline speedup.
func BenchmarkEngineIngestParallel(b *testing.B) {
	const batchSize = 256
	e := benchIngestEngine(b)
	err := e.StartIngest(engine.IngestConfig{Workers: 4, BatchSize: batchSize, QueueDepth: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer e.StopIngest()
	us := benchIngestStream(1 << 16)
	b.SetBytes(16)
	b.ResetTimer()
	for off := 0; off < b.N; off += batchSize {
		n := batchSize
		if rem := b.N - off; rem < n {
			n = rem
		}
		lo := off & (1<<16 - 1)
		if lo+n > 1<<16 {
			lo = 0
		}
		if err := e.IngestBatch("F", us[lo:lo+n]); err != nil {
			b.Fatal(err)
		}
	}
	e.Flush()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
}

// BenchmarkPointEstimate measures a single COUNTSKETCH point query.
func BenchmarkPointEstimate(b *testing.B) {
	f, _ := buildJoinPair(b, 1<<14, 100000, core.Config{Tables: 7, Buckets: 1024, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PointEstimate(uint64(i & 16383))
	}
}
