package skimsketch

import (
	"testing"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestNewJoinPairValidation(t *testing.T) {
	if _, err := NewJoinPair(0, Config{Tables: 3, Buckets: 8}); err == nil {
		t.Fatal("expected error for zero domain")
	}
	if _, err := NewJoinPair(16, Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
}

func TestJoinPairEndToEnd(t *testing.T) {
	const domain = 1 << 12
	p, err := NewJoinPair(domain, Config{Tables: 7, Buckets: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Domain() != domain {
		t.Fatalf("Domain = %d", p.Domain())
	}
	if p.Words() != 2*7*512 {
		t.Fatalf("Words = %d", p.Words())
	}

	zf, _ := workload.NewZipf(domain, 1.2, 11)
	zg, _ := workload.NewZipf(domain, 1.2, 12)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	for _, u := range workload.MakeStream(zf, 30000) {
		p.UpdateF(u.Value, u.Weight)
		fv.Update(u.Value, u.Weight)
	}
	for _, u := range workload.MakeStream(zg, 30000) {
		p.UpdateG(u.Value, u.Weight)
		gv.Update(u.Value, u.Weight)
	}
	exact := float64(fv.InnerProduct(gv))
	est, err := p.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.SymmetricError(float64(est.Total), exact); e > 0.25 {
		t.Fatalf("error %.4f too large (est %d vs exact %.0f)", e, est.Total, exact)
	}
}

func TestFacadeFunctions(t *testing.T) {
	cfg := Config{Tables: 5, Buckets: 64, Seed: 9}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Update(3, 10)
	g.Update(3, 4)
	est, err := EstimateJoin(f, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 40 {
		t.Fatalf("Total = %d, want 40", est.Total)
	}
	raw, err := EstimateJoinOptions(f, g, 16, Options{NoSkim: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Total != 40 {
		t.Fatalf("NoSkim Total = %d, want 40", raw.Total)
	}
}

func TestFacadeHierarchy(t *testing.T) {
	h, err := NewHierarchy(8, Config{Tables: 3, Buckets: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Update(100, 7)
	if got := h.Base().PointEstimate(100); got != 7 {
		t.Fatalf("estimate = %d, want 7", got)
	}
	// Sinks compose: a pair's sketches accept stream.Apply.
	p, _ := NewJoinPair(256, Config{Tables: 3, Buckets: 32, Seed: 2})
	stream.Apply([]Update{stream.Insert(1)}, p.F(), p.G())
	if p.F().NetCount() != 1 || p.G().NetCount() != 1 {
		t.Fatal("sketches must implement stream.Sink")
	}
}
