package skimsketch_test

import (
	"path/filepath"
	"testing"

	"skimsketch"
	"skimsketch/internal/core"
	"skimsketch/internal/distributed"
	"skimsketch/internal/dyadic"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/window"
	"skimsketch/internal/workload"
)

// Integration tests exercising multi-module flows end to end: file I/O →
// one-pass ingestion → estimation; checkpoint/restore mid-stream;
// parallel shards vs dyadic hierarchies vs plain sketches answering the
// same query.

// TestFilePipelineEndToEnd: generate streams, persist them, re-ingest in
// one pass, estimate, and grade against the exact answer computed from
// the same files.
func TestFilePipelineEndToEnd(t *testing.T) {
	const domain = 1 << 12
	dir := t.TempDir()
	fPath := filepath.Join(dir, "f.sks")
	gPath := filepath.Join(dir, "g.sks")

	zf, _ := workload.NewZipf(domain, 1.2, 1)
	zg, _ := workload.NewZipf(domain, 1.2, 2)
	fUpdates := workload.WithDeletes(workload.MakeStream(zf, 30000), 0.2, 3)
	gUpdates := workload.MakeStream(workload.NewShifted(zg, 25), 30000)
	if err := stream.WriteFile(fPath, domain, fUpdates); err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteFile(gPath, domain, gUpdates); err != nil {
		t.Fatal(err)
	}

	cfg := skimsketch.Config{Tables: 7, Buckets: 512, Seed: 99}
	f, _ := skimsketch.New(cfg)
	g, _ := skimsketch.New(cfg)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	if _, err := stream.Pipe(fPath, f, fv); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Pipe(gPath, g, gv); err != nil {
		t.Fatal(err)
	}

	est, err := skimsketch.EstimateJoin(f, g, domain)
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(fv.InnerProduct(gv))
	if e := stats.SymmetricError(float64(est.Total), exact); e > 0.25 {
		t.Fatalf("pipeline error %.4f (est %d vs exact %.0f)", e, est.Total, exact)
	}
}

// TestCheckpointRestoreMidStream: serialize a sketch halfway through a
// stream, restore it into a fresh process-like state, finish the stream,
// and confirm the estimate is identical to an uninterrupted run.
func TestCheckpointRestoreMidStream(t *testing.T) {
	const domain = 1 << 10
	cfg := core.Config{Tables: 5, Buckets: 256, Seed: 5}
	z, _ := workload.NewZipf(domain, 1.3, 7)
	updates := workload.MakeStream(z, 20000)

	uninterrupted := core.MustNewHashSketch(cfg)
	stream.Apply(updates, uninterrupted)

	first := core.MustNewHashSketch(cfg)
	stream.Apply(updates[:10000], first)
	blob, err := first.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored core.HashSketch
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	stream.Apply(updates[10000:], &restored)

	for j := 0; j < 5; j++ {
		for k := 0; k < 256; k++ {
			if restored.Counter(j, k) != uninterrupted.Counter(j, k) {
				t.Fatal("checkpoint/restore diverged from uninterrupted run")
			}
		}
	}
}

// TestAllPathsAgreeOnTheSameQuery: the plain sketch, the parallel-shard
// merge, and the dyadic hierarchy's base sketch must produce identical
// synopses for the same stream, and hence identical join estimates.
func TestAllPathsAgreeOnTheSameQuery(t *testing.T) {
	const bits = 10
	const domain = 1 << bits
	cfg := core.Config{Tables: 5, Buckets: 128, Seed: 11}
	z, _ := workload.NewZipf(domain, 1.4, 9)
	updates := workload.MakeStream(z, 20000)

	plain := core.MustNewHashSketch(cfg)
	stream.Apply(updates, plain)

	in, err := distributed.NewIngestor(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream.Apply(updates, in)
	in.Close()
	merged, err := in.Merged()
	if err != nil {
		t.Fatal(err)
	}

	// The dyadic hierarchy's level-0 sketch uses a derived seed, so
	// compare behaviour (point estimates across the domain) rather than
	// raw counters for it.
	hier := dyadic.MustNew(bits, cfg)
	stream.Apply(updates, hier)

	exact := stream.NewFreqVector()
	stream.Apply(updates, exact)

	for j := 0; j < 5; j++ {
		for k := 0; k < 128; k++ {
			if plain.Counter(j, k) != merged.Counter(j, k) {
				t.Fatal("sharded and plain sketches differ")
			}
		}
	}
	// Dense sets extracted by every path agree with the ground truth's
	// heavy values.
	thr := plain.DefaultSkimThreshold()
	densePlain := plain.DenseValues(domain, thr)
	denseHier, err := hier.Skim(thr)
	if err != nil {
		t.Fatal(err)
	}
	trueDense := exact.Dense(thr + thr/2) // comfortably above threshold
	for v := range trueDense {
		if _, ok := densePlain[v]; !ok {
			t.Fatalf("plain sketch missed clearly-dense value %d", v)
		}
		if _, ok := denseHier[v]; !ok {
			t.Fatalf("dyadic hierarchy missed clearly-dense value %d", v)
		}
	}
}

// TestWindowedVersusLandmark: on a stream whose join partner changes
// character over time, the windowed estimator tracks the recent join
// while the landmark estimator reports the whole history.
func TestWindowedVersusLandmark(t *testing.T) {
	const domain = 1 << 10
	cfg := core.Config{Tables: 7, Buckets: 256, Seed: 13}
	landF := core.MustNewHashSketch(cfg)
	landG := core.MustNewHashSketch(cfg)
	winF := window.MustNew(20000, 4, cfg)
	winG := window.MustNew(20000, 4, cfg)

	feed := func(fVal, gVal func(i int) uint64, n int) {
		for i := 0; i < n; i++ {
			fv, gv := fVal(i), gVal(i)
			landF.Update(fv, 1)
			landG.Update(gv, 1)
			winF.Update(fv, 1)
			winG.Update(gv, 1)
		}
	}
	// Phase 1: streams overlap heavily (same values).
	zf1, _ := workload.NewZipf(domain, 1.2, 1)
	zg1, _ := workload.NewZipf(domain, 1.2, 2)
	feed(func(int) uint64 { return zf1.Next() }, func(int) uint64 { return zg1.Next() }, 40000)
	// Phase 2: G moves to a disjoint half of the domain.
	zf2, _ := workload.NewZipf(domain/2, 1.2, 3)
	zg2, _ := workload.NewZipf(domain/2, 1.2, 4)
	feed(func(int) uint64 { return zf2.Next() },
		func(int) uint64 { return zg2.Next() + domain/2 }, 40000)

	land, err := core.EstimateJoin(landF, landG, domain, nil)
	if err != nil {
		t.Fatal(err)
	}
	win, err := window.EstimateJoin(winF, winG, domain)
	if err != nil {
		t.Fatal(err)
	}
	// The window covers only phase 2, which is disjoint: its estimate
	// must be far below the landmark estimate.
	if win.Total*10 > land.Total {
		t.Fatalf("windowed estimate %d should be tiny next to landmark %d", win.Total, land.Total)
	}
}
